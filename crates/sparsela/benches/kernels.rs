//! Criterion microbenchmarks of the sparse kernels under the mGBA
//! workload shape: tall sparse matrices (paths × gates) with tens of
//! entries per row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparsela::kaczmarz::randomized_kaczmarz;
use sparsela::sampling::{NormSampler, UniformSampler};
use sparsela::{CsrBuilder, CsrMatrix};
use std::hint::black_box;

fn path_shaped(m: usize, n: usize, nnz: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CsrBuilder::new(n);
    let mut row = Vec::with_capacity(nnz);
    for _ in 0..m {
        row.clear();
        for _ in 0..nnz {
            row.push((rng.random_range(0..n), rng.random_range(50.0..150.0)));
        }
        b.push_row(&row);
    }
    b.build()
}

fn bench_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr/matvec");
    for &(m, n) in &[(1_000usize, 500usize), (10_000, 3_000)] {
        let a = path_shaped(m, n, 25, 1);
        let x = vec![0.01; n];
        group.bench_function(BenchmarkId::from_parameter(format!("{m}x{n}")), |b| {
            b.iter(|| black_box(a.matvec(&x)))
        });
    }
    group.finish();
}

fn bench_row_ops(c: &mut Criterion) {
    let a = path_shaped(10_000, 3_000, 25, 2);
    let x = vec![0.01; 3_000];
    let mut group = c.benchmark_group("csr/row");
    group.bench_function("row_dot", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % a.num_rows();
            black_box(a.row_dot(i, &x))
        })
    });
    group.bench_function("row_norms_sq", |b| b.iter(|| black_box(a.row_norms_sq())));
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let a = path_shaped(10_000, 3_000, 25, 3);
    let norms = a.row_norms_sq();
    let sampler = NormSampler::new(&norms).expect("non-zero matrix");
    let mut group = c.benchmark_group("sampling");
    group.bench_function("norm_draw_200", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| black_box(sampler.draw_many(&mut rng, 200)))
    });
    group.bench_function("uniform_200_of_10k", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let u = UniformSampler::new();
        b.iter(|| black_box(u.sample(&mut rng, 10_000, 200)))
    });
    group.bench_function("select_rows_200", |b| {
        let rows: Vec<usize> = (0..200).map(|i| i * 50).collect();
        b.iter(|| black_box(a.select_rows(&rows)))
    });
    group.finish();
}

fn bench_kaczmarz(c: &mut Criterion) {
    // A consistent diagonally-dominant system Kaczmarz solves quickly.
    let n = 200;
    let mut b = CsrBuilder::new(n);
    for i in 0..n {
        b.push_row(&[(i, 10.0), ((i + 1) % n, 1.0)]);
    }
    let a = b.build();
    let x_true: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.1).collect();
    let rhs = a.matvec(&x_true);
    let mut group = c.benchmark_group("kaczmarz");
    group.sample_size(20);
    group.bench_function("diag200", |bch| {
        bch.iter(|| {
            let mut rng = StdRng::seed_from_u64(6);
            black_box(randomized_kaczmarz(&a, &rhs, 1e-8, 50_000, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matvec,
    bench_row_ops,
    bench_sampling,
    bench_kaczmarz
);
criterion_main!(benches);
