//! Row-sampling strategies.
//!
//! Two samplers back the paper's two levels of stochasticity:
//!
//! - [`UniformSampler`] — uniform row subsets for the *outer* problem
//!   reduction (Algorithm 1). Uniform sampling is justified when the data
//!   has low coherence (paper refs \[16\]\[17\]): computing true leverage
//!   scores would be as expensive as solving the problem.
//! - [`NormSampler`] — rows drawn with probability proportional to their
//!   squared Euclidean norm (Eq. (11)), the randomized-Kaczmarz
//!   distribution used by the *inner* stochastic CG solver.

use rand::Rng;

/// Uniform sampling of row subsets without replacement.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformSampler;

impl UniformSampler {
    /// Creates a sampler.
    pub fn new() -> Self {
        Self
    }

    /// Draws `k` distinct row indices from `0..m` uniformly at random
    /// (partial Fisher–Yates). If `k ≥ m`, returns all rows in order.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, m: usize, k: usize) -> Vec<usize> {
        if k >= m {
            return (0..m).collect();
        }
        let mut pool: Vec<usize> = (0..m).collect();
        for i in 0..k {
            let j = rng.random_range(i..m);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }

    /// Draws a `ratio` fraction of `0..m` (at least one row when `m > 0`).
    pub fn sample_ratio<R: Rng + ?Sized>(&self, rng: &mut R, m: usize, ratio: f64) -> Vec<usize> {
        if m == 0 {
            return Vec::new();
        }
        let k = ((m as f64 * ratio).ceil() as usize).clamp(1, m);
        self.sample(rng, m, k)
    }
}

/// Sampling with probability proportional to fixed non-negative weights
/// (squared row norms), with replacement, via an O(log n) CDF search.
#[derive(Debug, Clone)]
pub struct NormSampler {
    cdf: Vec<f64>,
    total: f64,
}

impl NormSampler {
    /// Builds the sampler from squared row norms (Eq. (11) of the paper).
    ///
    /// Rows with zero weight are never drawn. Returns `None` if every
    /// weight is zero (the system has no information).
    pub fn new(weights_sq: &[f64]) -> Option<Self> {
        let mut cdf = Vec::with_capacity(weights_sq.len());
        let mut acc = 0.0;
        for &w in weights_sq {
            debug_assert!(w >= 0.0, "weights must be non-negative");
            acc += w;
            cdf.push(acc);
        }
        if acc <= 0.0 {
            return None;
        }
        Some(Self { cdf, total: acc })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The probability of drawing row `i`.
    pub fn probability(&self, i: usize) -> f64 {
        let lo = if i == 0 { 0.0 } else { self.cdf[i - 1] };
        (self.cdf[i] - lo) / self.total
    }

    /// Draws one row index.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random_range(0.0..self.total);
        // partition_point: first index whose cdf exceeds u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }

    /// Draws `k` rows with replacement.
    pub fn draw_many<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<usize> {
        (0..k).map(|_| self.draw(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn uniform_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = UniformSampler::new();
        let rows = s.sample(&mut rng, 100, 10);
        assert_eq!(rows.len(), 10);
        let set: HashSet<_> = rows.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(rows.iter().all(|&r| r < 100));
    }

    #[test]
    fn uniform_sample_saturates() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = UniformSampler::new();
        assert_eq!(s.sample(&mut rng, 5, 10), vec![0, 1, 2, 3, 4]);
        assert!(s.sample_ratio(&mut rng, 0, 0.5).is_empty());
        // Tiny ratio still yields at least one row.
        assert_eq!(s.sample_ratio(&mut rng, 1000, 1e-9).len(), 1);
    }

    #[test]
    fn ratio_sampling_size() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = UniformSampler::new();
        assert_eq!(s.sample_ratio(&mut rng, 1000, 0.1).len(), 100);
    }

    #[test]
    fn norm_sampler_respects_probabilities() {
        let sampler = NormSampler::new(&[1.0, 3.0, 0.0, 6.0]).unwrap();
        assert_eq!(sampler.len(), 4);
        assert!((sampler.probability(0) - 0.1).abs() < 1e-12);
        assert!((sampler.probability(1) - 0.3).abs() < 1e-12);
        assert_eq!(sampler.probability(2), 0.0);
        assert!((sampler.probability(3) - 0.6).abs() < 1e-12);

        let mut rng = StdRng::seed_from_u64(4);
        let draws = sampler.draw_many(&mut rng, 20_000);
        let mut counts = [0usize; 4];
        for d in draws {
            counts[d] += 1;
        }
        assert_eq!(counts[2], 0, "zero-weight row must never be drawn");
        let f1 = counts[1] as f64 / 20_000.0;
        let f3 = counts[3] as f64 / 20_000.0;
        assert!((f1 - 0.3).abs() < 0.02, "empirical {f1} vs 0.3");
        assert!((f3 - 0.6).abs() < 0.02, "empirical {f3} vs 0.6");
    }

    #[test]
    fn norm_sampler_rejects_all_zero() {
        assert!(NormSampler::new(&[0.0, 0.0]).is_none());
        assert!(NormSampler::new(&[]).is_none());
    }

    #[test]
    fn uniform_sampling_is_seed_deterministic() {
        let s = UniformSampler::new();
        let a = s.sample(&mut StdRng::seed_from_u64(9), 50, 5);
        let b = s.sample(&mut StdRng::seed_from_u64(9), 50, 5);
        assert_eq!(a, b);
    }
}
