//! Reference randomized Kaczmarz solver.
//!
//! The paper's stochastic CG solver (its Algorithm 2) is "based on
//! randomized Kaczmarz" (paper refs \[14\]\[15\]): rows are drawn with probability
//! proportional to their squared norm and the iterate is projected onto
//! each drawn row's hyperplane. This module provides the classic solver as
//! an independent baseline and as a correctness oracle in tests: for
//! consistent systems it converges to the minimum-norm solution.

use crate::csr::CsrMatrix;
use crate::sampling::NormSampler;
use crate::vecops;
use rand::Rng;

/// Outcome of a [`randomized_kaczmarz`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct KaczmarzResult {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Row projections performed.
    pub iterations: usize,
    /// Final residual norm `‖A·x − b‖₂`.
    pub residual: f64,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
}

/// Solves `A·x ≈ b` by randomized Kaczmarz projections.
///
/// Each step draws row `j` with probability `‖a_j‖² / ‖A‖_F²` and projects
/// the iterate onto `{x : a_j·x = b_j}`. Stops when the full residual norm
/// (checked every `m` steps) drops below `tol`, or after `max_iters`
/// projections.
///
/// # Panics
///
/// Panics if `b.len()` differs from the row count, or if `A` is entirely
/// zero.
pub fn randomized_kaczmarz<R: Rng + ?Sized>(
    a: &CsrMatrix,
    b: &[f64],
    tol: f64,
    max_iters: usize,
    rng: &mut R,
) -> KaczmarzResult {
    assert_eq!(b.len(), a.num_rows(), "rhs length must match rows");
    let norms = a.row_norms_sq();
    let sampler = NormSampler::new(&norms).expect("matrix must have a non-zero row");
    let mut x = vec![0.0; a.num_cols()];
    let check_every = a.num_rows().max(16);
    let mut iterations = 0;
    let mut residual = vecops::norm2(b);
    let mut converged = residual <= tol;

    while !converged && iterations < max_iters {
        let j = sampler.draw(rng);
        let r = b[j] - a.row_dot(j, &x);
        if norms[j] > 0.0 {
            a.scatter_row(j, r / norms[j], &mut x);
        }
        iterations += 1;
        if iterations % check_every == 0 {
            let ax = a.matvec(&x);
            residual = ax
                .iter()
                .zip(b)
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f64>()
                .sqrt();
            converged = residual <= tol;
        }
    }
    if !converged {
        let ax = a.matvec(&x);
        residual = ax
            .iter()
            .zip(b)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        converged = residual <= tol;
    }
    KaczmarzResult {
        x,
        iterations,
        residual,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn diag3() -> CsrMatrix {
        let mut b = CsrBuilder::new(3);
        b.push_row(&[(0, 2.0)]);
        b.push_row(&[(1, 4.0)]);
        b.push_row(&[(2, 8.0)]);
        b.build()
    }

    #[test]
    fn solves_diagonal_system() {
        let a = diag3();
        let b = vec![2.0, 8.0, 24.0];
        let mut rng = StdRng::seed_from_u64(5);
        let r = randomized_kaczmarz(&a, &b, 1e-10, 10_000, &mut rng);
        assert!(r.converged);
        assert!((r.x[0] - 1.0).abs() < 1e-8);
        assert!((r.x[1] - 2.0).abs() < 1e-8);
        assert!((r.x[2] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn converges_on_overdetermined_consistent_system() {
        // 4 rows, 2 cols, consistent with x = (1, -2).
        let mut bld = CsrBuilder::new(2);
        bld.push_row(&[(0, 1.0), (1, 1.0)]);
        bld.push_row(&[(0, 2.0), (1, -1.0)]);
        bld.push_row(&[(0, 1.0)]);
        bld.push_row(&[(1, 3.0)]);
        let a = bld.build();
        let x_true = [1.0, -2.0];
        let b = a.matvec(&x_true);
        let mut rng = StdRng::seed_from_u64(6);
        let r = randomized_kaczmarz(&a, &b, 1e-9, 50_000, &mut rng);
        assert!(r.converged, "residual {}", r.residual);
        assert!((r.x[0] - 1.0).abs() < 1e-6);
        assert!((r.x[1] + 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = diag3();
        let mut rng = StdRng::seed_from_u64(7);
        let r = randomized_kaczmarz(&a, &[0.0; 3], 1e-12, 100, &mut rng);
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.x, vec![0.0; 3]);
    }

    #[test]
    fn iteration_cap_is_respected() {
        // An inconsistent system can never converge to zero residual.
        let mut bld = CsrBuilder::new(1);
        bld.push_row(&[(0, 1.0)]);
        bld.push_row(&[(0, 1.0)]);
        let a = bld.build();
        let r = randomized_kaczmarz(&a, &[0.0, 1.0], 1e-12, 500, &mut StdRng::seed_from_u64(8));
        assert!(!r.converged);
        assert_eq!(r.iterations, 500);
        assert!(r.residual > 0.0);
    }

    proptest! {
        /// On random consistent systems with well-separated diagonal
        /// structure, Kaczmarz recovers the planted solution.
        #[test]
        fn prop_recovers_planted_solution(
            x_true in prop::collection::vec(-3.0f64..3.0, 4),
            seed in 0u64..50,
        ) {
            // Diagonally dominant square system: fast, guaranteed
            // convergence.
            let mut bld = CsrBuilder::new(4);
            for i in 0..4 {
                let mut row = vec![(i, 5.0)];
                row.push(((i + 1) % 4, 1.0));
                bld.push_row(&row);
            }
            let a = bld.build();
            let b = a.matvec(&x_true);
            let mut rng = StdRng::seed_from_u64(seed);
            let r = randomized_kaczmarz(&a, &b, 1e-10, 200_000, &mut rng);
            prop_assert!(r.converged);
            for (got, want) in r.x.iter().zip(&x_true) {
                prop_assert!((got - want).abs() < 1e-6);
            }
        }
    }
}
