//! Dense vector operations.
//!
//! Small, allocation-free kernels over `&[f64]` used by every solver.
//! Panics on length mismatch — all callers own both operands and a
//! mismatch is a programming error, not a recoverable condition.

/// Squared Euclidean norm `‖v‖₂²`.
#[inline]
pub fn norm2_sq(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum()
}

/// Euclidean norm `‖v‖₂`.
#[inline]
pub fn norm2(v: &[f64]) -> f64 {
    norm2_sq(v).sqrt()
}

/// Dot product `a·b`.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// In-place `y ← y + alpha·x`.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `v ← alpha·v`.
#[inline]
pub fn scale(alpha: f64, v: &mut [f64]) {
    for vi in v.iter_mut() {
        *vi *= alpha;
    }
}

/// Normalizes `v` to unit Euclidean norm in place; leaves a zero vector
/// untouched. Returns the original norm.
#[inline]
pub fn normalize(v: &mut [f64]) -> f64 {
    let n = norm2(v);
    if n > 0.0 {
        scale(1.0 / n, v);
    }
    n
}

/// Relative change `‖a − b‖ / ‖b‖`, the convergence test of both paper
/// algorithms (line 2 of Algorithms 1 and 2). Returns `∞` when `b` is the
/// zero vector but `a` is not, and `0` when both are zero.
pub fn relative_change(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "relative_change: length mismatch");
    let diff: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let nb = norm2(b);
    if nb > 0.0 {
        diff / nb
    } else if diff > 0.0 {
        f64::INFINITY
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm2_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_and_normalize() {
        let mut v = vec![3.0, 4.0];
        scale(2.0, &mut v);
        assert_eq!(v, vec![6.0, 8.0]);
        let n = normalize(&mut v);
        assert_eq!(n, 10.0);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn relative_change_cases() {
        assert_eq!(relative_change(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((relative_change(&[1.1, 0.0], &[1.0, 0.0]) - 0.1).abs() < 1e-12);
        assert_eq!(relative_change(&[1.0], &[0.0]), f64::INFINITY);
        assert_eq!(relative_change(&[0.0], &[0.0]), 0.0);
    }
}
