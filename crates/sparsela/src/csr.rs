//! Compressed sparse row matrices.

use crate::vecops;
use std::fmt;

/// Incremental row-by-row builder for [`CsrMatrix`].
///
/// ```
/// use sparsela::CsrBuilder;
/// let mut b = CsrBuilder::new(3);
/// b.push_row(&[(0, 1.0), (2, 2.0)]);
/// b.push_row(&[(1, 3.0)]);
/// let a = b.build();
/// assert_eq!(a.shape(), (2, 3));
/// assert_eq!(a.nnz(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    num_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrBuilder {
    /// Starts a builder for a matrix with `num_cols` columns.
    pub fn new(num_cols: usize) -> Self {
        Self {
            num_cols,
            row_ptr: vec![0],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Appends one row given `(column, value)` pairs. Zero values are kept
    /// (callers control sparsification). Duplicate columns within a row are
    /// allowed and behave additively under matvec.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of range.
    pub fn push_row(&mut self, entries: &[(usize, f64)]) {
        for &(c, v) in entries {
            assert!(c < self.num_cols, "column {c} out of range");
            self.col_idx.push(c as u32);
            self.values.push(v);
        }
        self.row_ptr.push(self.col_idx.len());
    }

    /// Number of rows pushed so far.
    pub fn num_rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Finalizes the matrix.
    pub fn build(self) -> CsrMatrix {
        CsrMatrix {
            num_cols: self.num_cols,
            row_ptr: self.row_ptr,
            col_idx: self.col_idx,
            values: self.values,
        }
    }
}

/// An immutable sparse matrix in compressed sparse row format.
#[derive(Clone, PartialEq)]
pub struct CsrMatrix {
    num_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// `(rows, cols)` shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.row_ptr.len() - 1, self.num_cols)
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(columns, values)` slices of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Sparse dot product of row `i` with dense `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_cols` or `i` is out of range.
    #[inline]
    pub fn row_dot(&self, i: usize, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_cols, "row_dot: dimension mismatch");
        let (cols, vals) = self.row(i);
        cols.iter()
            .zip(vals)
            .map(|(&c, &v)| v * x[c as usize])
            .sum()
    }

    /// Squared Euclidean norm of row `i`.
    #[inline]
    pub fn row_norm_sq(&self, i: usize) -> f64 {
        let (_, vals) = self.row(i);
        vecops::norm2_sq(vals)
    }

    /// All squared row norms (the randomized-Kaczmarz sampling weights of
    /// the paper's Eq. (11)).
    pub fn row_norms_sq(&self) -> Vec<f64> {
        (0..self.num_rows()).map(|i| self.row_norm_sq(i)).collect()
    }

    /// Dense matrix-vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        (0..self.num_rows()).map(|i| self.row_dot(i, x)).collect()
    }

    /// Dense transposed product `z = Aᵀ·y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != num_rows`.
    pub fn matvec_t(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.num_rows(), "matvec_t: dimension mismatch");
        let mut z = vec![0.0; self.num_cols];
        for (i, &yi) in y.iter().enumerate() {
            if yi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                z[c as usize] += v * yi;
            }
        }
        z
    }

    /// Accumulates `alpha · rowᵢᵀ` into dense `z` (scattered axpy — the
    /// inner operation of stochastic gradient steps).
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != num_cols`.
    #[inline]
    pub fn scatter_row(&self, i: usize, alpha: f64, z: &mut [f64]) {
        assert_eq!(z.len(), self.num_cols, "scatter_row: dimension mismatch");
        let (cols, vals) = self.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            z[c as usize] += alpha * v;
        }
    }

    /// Builds the submatrix of the given rows (in the given order),
    /// together with nothing else — column count is preserved.
    pub fn select_rows(&self, rows: &[usize]) -> CsrMatrix {
        let mut b = CsrBuilder::new(self.num_cols);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for &r in rows {
            let (cols, vals) = self.row(r);
            scratch.clear();
            scratch.extend(cols.iter().zip(vals).map(|(&c, &v)| (c as usize, v)));
            b.push_row(&scratch);
        }
        b.build()
    }

    /// Column coverage: how many of the columns have at least one stored
    /// entry. The paper's §3.2 gate-coverage argument is exactly this
    /// statistic on the selected-path matrix.
    pub fn covered_columns(&self) -> usize {
        let mut seen = vec![false; self.num_cols];
        for &c in &self.col_idx {
            seen[c as usize] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }
}

impl fmt::Debug for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrMatrix({}×{}, nnz={})",
            self.num_rows(),
            self.num_cols,
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> CsrMatrix {
        // [1 0 2]
        // [0 3 0]
        // [4 5 6]
        let mut b = CsrBuilder::new(3);
        b.push_row(&[(0, 1.0), (2, 2.0)]);
        b.push_row(&[(1, 3.0)]);
        b.push_row(&[(0, 4.0), (1, 5.0), (2, 6.0)]);
        b.build()
    }

    #[test]
    fn shape_and_rows() {
        let a = small();
        assert_eq!(a.shape(), (3, 3));
        assert_eq!(a.nnz(), 6);
        let (cols, vals) = a.row(2);
        assert_eq!(cols, &[0, 1, 2]);
        assert_eq!(vals, &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(a.matvec(&x), vec![7.0, 6.0, 32.0]);
    }

    #[test]
    fn matvec_t_matches_dense() {
        let a = small();
        let y = [1.0, 2.0, 3.0];
        // Aᵀy = [1*1+4*3, 3*2+5*3, 2*1+6*3]
        assert_eq!(a.matvec_t(&y), vec![13.0, 21.0, 20.0]);
    }

    #[test]
    fn row_norms() {
        let a = small();
        assert_eq!(a.row_norm_sq(0), 5.0);
        assert_eq!(a.row_norms_sq(), vec![5.0, 9.0, 77.0]);
    }

    #[test]
    fn scatter_row_accumulates() {
        let a = small();
        let mut z = vec![0.0; 3];
        a.scatter_row(2, 2.0, &mut z);
        assert_eq!(z, vec![8.0, 10.0, 12.0]);
        a.scatter_row(0, 1.0, &mut z);
        assert_eq!(z, vec![9.0, 10.0, 14.0]);
    }

    #[test]
    fn select_rows_preserves_content() {
        let a = small();
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(s.row(0).1, a.row(2).1);
        assert_eq!(s.row(1).1, a.row(0).1);
    }

    #[test]
    fn covered_columns_counts_nonempty() {
        let a = small();
        assert_eq!(a.covered_columns(), 3);
        let s = a.select_rows(&[1]);
        assert_eq!(s.covered_columns(), 1);
    }

    #[test]
    #[should_panic(expected = "column 5 out of range")]
    fn out_of_range_column_panics() {
        let mut b = CsrBuilder::new(3);
        b.push_row(&[(5, 1.0)]);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", small()), "CsrMatrix(3×3, nnz=6)");
    }

    proptest! {
        /// matvec agrees with a dense reference on random sparse matrices.
        #[test]
        fn prop_matvec_matches_dense_reference(
            rows in prop::collection::vec(
                prop::collection::vec((0usize..8, -10.0f64..10.0), 0..6),
                1..10
            ),
            x in prop::collection::vec(-5.0f64..5.0, 8),
        ) {
            let mut b = CsrBuilder::new(8);
            let mut dense = vec![vec![0.0; 8]; rows.len()];
            for (i, row) in rows.iter().enumerate() {
                b.push_row(row);
                for &(c, v) in row {
                    dense[i][c] += v;
                }
            }
            let a = b.build();
            let y = a.matvec(&x);
            for (i, d) in dense.iter().enumerate() {
                let expect: f64 = d.iter().zip(&x).map(|(m, xv)| m * xv).sum();
                prop_assert!((y[i] - expect).abs() < 1e-9);
            }
        }

        /// Aᵀ(A x) computed via matvec_t equals the dense normal-equation
        /// product.
        #[test]
        fn prop_transpose_consistent(
            rows in prop::collection::vec(
                prop::collection::vec((0usize..6, -3.0f64..3.0), 1..5),
                1..8
            ),
            x in prop::collection::vec(-2.0f64..2.0, 6),
        ) {
            let mut b = CsrBuilder::new(6);
            for row in &rows {
                b.push_row(row);
            }
            let a = b.build();
            let ax = a.matvec(&x);
            let atax = a.matvec_t(&ax);
            // Reference: accumulate dense AᵀA x.
            let mut dense = vec![vec![0.0; 6]; rows.len()];
            for (i, row) in rows.iter().enumerate() {
                for &(c, v) in row {
                    dense[i][c] += v;
                }
            }
            for j in 0..6 {
                let mut expect = 0.0;
                for d in &dense {
                    let r: f64 = d.iter().zip(&x).map(|(m, xv)| m * xv).sum();
                    expect += d[j] * r;
                }
                prop_assert!((atax[j] - expect).abs() < 1e-6);
            }
        }

        /// Row selection preserves per-row dot products.
        #[test]
        fn prop_select_rows_consistent(
            rows in prop::collection::vec(
                prop::collection::vec((0usize..5, -3.0f64..3.0), 0..4),
                2..8
            ),
            x in prop::collection::vec(-2.0f64..2.0, 5),
            pick in prop::collection::vec(0usize..100, 1..6),
        ) {
            let mut b = CsrBuilder::new(5);
            for row in &rows {
                b.push_row(row);
            }
            let a = b.build();
            let picks: Vec<usize> = pick.iter().map(|p| p % a.num_rows()).collect();
            let s = a.select_rows(&picks);
            for (si, &orig) in picks.iter().enumerate() {
                prop_assert!((s.row_dot(si, &x) - a.row_dot(orig, &x)).abs() < 1e-9);
            }
        }
    }
}
