//! Compressed sparse row matrices.

use crate::vecops;
use parallel::Parallelism;
use std::fmt;

/// Below this many rows the parallel kernels run serially: thread
/// hand-off costs more than the row loop saves.
pub const PAR_ROW_THRESHOLD: usize = 512;

/// Incremental row-by-row builder for [`CsrMatrix`].
///
/// ```
/// use sparsela::CsrBuilder;
/// let mut b = CsrBuilder::new(3);
/// b.push_row(&[(0, 1.0), (2, 2.0)]);
/// b.push_row(&[(1, 3.0)]);
/// let a = b.build();
/// assert_eq!(a.shape(), (2, 3));
/// assert_eq!(a.nnz(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    num_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrBuilder {
    /// Starts a builder for a matrix with `num_cols` columns.
    pub fn new(num_cols: usize) -> Self {
        Self {
            num_cols,
            row_ptr: vec![0],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Appends one row given `(column, value)` pairs. Zero values are kept
    /// (callers control sparsification). Duplicate columns within a row are
    /// allowed and behave additively under matvec.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of range.
    pub fn push_row(&mut self, entries: &[(usize, f64)]) {
        for &(c, v) in entries {
            assert!(c < self.num_cols, "column {c} out of range");
            self.col_idx.push(c as u32);
            self.values.push(v);
        }
        self.row_ptr.push(self.col_idx.len());
    }

    /// Number of rows pushed so far.
    pub fn num_rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Finalizes the matrix.
    pub fn build(self) -> CsrMatrix {
        CsrMatrix {
            num_cols: self.num_cols,
            row_ptr: self.row_ptr,
            col_idx: self.col_idx,
            values: self.values,
        }
    }
}

/// An immutable sparse matrix in compressed sparse row format.
#[derive(Clone, PartialEq)]
pub struct CsrMatrix {
    num_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// `(rows, cols)` shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.row_ptr.len() - 1, self.num_cols)
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(columns, values)` slices of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Sparse dot product of row `i` with dense `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_cols` or `i` is out of range.
    #[inline]
    pub fn row_dot(&self, i: usize, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_cols, "row_dot: dimension mismatch");
        let (cols, vals) = self.row(i);
        cols.iter()
            .zip(vals)
            .map(|(&c, &v)| v * x[c as usize])
            .sum()
    }

    /// Squared Euclidean norm of row `i`.
    #[inline]
    pub fn row_norm_sq(&self, i: usize) -> f64 {
        let (_, vals) = self.row(i);
        vecops::norm2_sq(vals)
    }

    /// All squared row norms (the randomized-Kaczmarz sampling weights of
    /// the paper's Eq. (11)).
    pub fn row_norms_sq(&self) -> Vec<f64> {
        (0..self.num_rows()).map(|i| self.row_norm_sq(i)).collect()
    }

    /// Dense matrix-vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        obs::counter_add("sparsela.matvec.calls", 1);
        obs::counter_add("sparsela.matvec.rows", self.num_rows() as u64);
        (0..self.num_rows()).map(|i| self.row_dot(i, x)).collect()
    }

    /// Dense transposed product `z = Aᵀ·y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != num_rows`.
    pub fn matvec_t(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.num_rows(), "matvec_t: dimension mismatch");
        obs::counter_add("sparsela.matvec.calls", 1);
        obs::counter_add("sparsela.matvec.rows", self.num_rows() as u64);
        let mut z = vec![0.0; self.num_cols];
        for (i, &yi) in y.iter().enumerate() {
            if yi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                z[c as usize] += v * yi;
            }
        }
        z
    }

    /// Accumulates `alpha · rowᵢᵀ` into dense `z` (scattered axpy — the
    /// inner operation of stochastic gradient steps).
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != num_cols`.
    #[inline]
    pub fn scatter_row(&self, i: usize, alpha: f64, z: &mut [f64]) {
        assert_eq!(z.len(), self.num_cols, "scatter_row: dimension mismatch");
        let (cols, vals) = self.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            z[c as usize] += alpha * v;
        }
    }

    /// Overwrites the stored values of row `i` in place. The sparsity
    /// pattern is fixed at construction: the caller supplies exactly one
    /// value per stored entry, in stored (column) order. This is the
    /// dirty-row fast path of incremental refits — coefficients move but
    /// the path→gate structure does not, so no rebuild is needed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `values.len()` differs from the
    /// row's stored entry count.
    pub fn set_row_values(&mut self, i: usize, values: &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        assert_eq!(
            values.len(),
            hi - lo,
            "set_row_values: row {i} stores {} entries",
            hi - lo
        );
        self.values[lo..hi].copy_from_slice(values);
    }

    /// Patches a transpose (a matrix produced by [`Self::transpose`])
    /// after original row `row` changed values: each `(cols[k],
    /// values[k])` pair is the new content of that row, in stored order,
    /// and overwrites the mirrored entry inside transpose row `cols[k]`.
    ///
    /// Within a transpose row the entries are sorted by original row
    /// (the counting sort preserves ascending row order), so each mirror
    /// is found by binary search; duplicate columns within the original
    /// row map to consecutive mirrored entries in their original order.
    /// After patching, the transpose is bit-identical to re-transposing
    /// the patched original.
    ///
    /// # Panics
    ///
    /// Panics if `cols`/`values` disagree in length or any `(row, col)`
    /// entry is not stored in the transpose — i.e. the caller changed
    /// the sparsity pattern, which this fast path forbids.
    pub fn patch_transposed_row(&mut self, row: usize, cols: &[u32], values: &[f64]) {
        assert_eq!(
            cols.len(),
            values.len(),
            "patch_transposed_row: cols/values length mismatch"
        );
        let r = row as u32;
        for (k, (&c, &v)) in cols.iter().zip(values).enumerate() {
            // Duplicate columns in a row are legal (additive under
            // matvec); the k-th duplicate mirrors to the k-th stored
            // occurrence of `row` in transpose row `c`.
            let dup = cols[..k].iter().filter(|&&p| p == c).count();
            let lo = self.row_ptr[c as usize];
            let hi = self.row_ptr[c as usize + 1];
            let first = self.col_idx[lo..hi].partition_point(|&x| x < r);
            let idx = lo + first + dup;
            assert!(
                idx < hi && self.col_idx[idx] == r,
                "patch_transposed_row: entry ({row}, {c}) not stored"
            );
            self.values[idx] = v;
        }
    }

    /// Builds the submatrix of the given rows (in the given order),
    /// together with nothing else — column count is preserved.
    pub fn select_rows(&self, rows: &[usize]) -> CsrMatrix {
        let mut b = CsrBuilder::new(self.num_cols);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for &r in rows {
            let (cols, vals) = self.row(r);
            scratch.clear();
            scratch.extend(cols.iter().zip(vals).map(|(&c, &v)| (c as usize, v)));
            b.push_row(&scratch);
        }
        b.build()
    }

    /// Parallel `y = A·x` over row blocks. Row `i` of the result is the
    /// same fixed-order dot product regardless of which thread computes
    /// it, so the output is bit-identical to [`Self::matvec`] for every
    /// thread count. Falls back to the serial loop below
    /// [`PAR_ROW_THRESHOLD`] rows.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_cols`.
    pub fn matvec_par(&self, x: &[f64], par: Parallelism) -> Vec<f64> {
        assert_eq!(x.len(), self.num_cols, "matvec_par: dimension mismatch");
        let m = self.num_rows();
        if par.is_serial() || m < PAR_ROW_THRESHOLD {
            return self.matvec(x);
        }
        obs::counter_add("sparsela.matvec.calls", 1);
        obs::counter_add("sparsela.matvec.rows", m as u64);
        let mut y = vec![0.0; m];
        parallel::par_fill(par, &mut y, |i| self.row_dot(i, x));
        y
    }

    /// Parallel squared row norms; bit-identical to
    /// [`Self::row_norms_sq`] for every thread count (same per-row
    /// fixed-order sums, serial fallback below [`PAR_ROW_THRESHOLD`]).
    pub fn row_norms_sq_par(&self, par: Parallelism) -> Vec<f64> {
        let m = self.num_rows();
        if par.is_serial() || m < PAR_ROW_THRESHOLD {
            return self.row_norms_sq();
        }
        let mut norms = vec![0.0; m];
        parallel::par_fill(par, &mut norms, |i| self.row_norm_sq(i));
        norms
    }

    /// Parallel transposed product `z = Aᵀ·y` via [`Self::transpose`].
    ///
    /// Entry `z[j]` is a fixed-order dot product of transpose row `j`
    /// (original rows ascending), so the result is bit-identical for
    /// every thread count — including one. It can differ in final bits
    /// from [`Self::matvec_t`], which accumulates in row-major scatter
    /// order. Iterative solvers should cache [`Self::transpose`] once
    /// and call [`Self::matvec_par`] on it instead of paying the
    /// transposition on every call.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != num_rows`.
    pub fn matvec_t_par(&self, y: &[f64], par: Parallelism) -> Vec<f64> {
        assert_eq!(y.len(), self.num_rows(), "matvec_t_par: dimension mismatch");
        self.transpose().matvec_par(y, par)
    }

    /// The transpose as a new CSR matrix (counting sort over columns,
    /// `O(nnz + cols)`). Within each transpose row, entries keep the
    /// original row order, making transpose-based products reproducible.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has more than `u32::MAX` rows (row indices
    /// become the transpose's column indices).
    pub fn transpose(&self) -> CsrMatrix {
        let (m, n) = self.shape();
        assert!(m <= u32::MAX as usize, "transpose: too many rows");
        let mut row_ptr = vec![0usize; n + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for j in 0..n {
            row_ptr[j + 1] += row_ptr[j];
        }
        let mut cursor = row_ptr[..n].to_vec();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for i in 0..m {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                let dst = cursor[c as usize];
                cursor[c as usize] += 1;
                col_idx[dst] = i as u32;
                values[dst] = v;
            }
        }
        CsrMatrix {
            num_cols: m,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Column coverage: how many of the columns have at least one stored
    /// entry. The paper's §3.2 gate-coverage argument is exactly this
    /// statistic on the selected-path matrix.
    pub fn covered_columns(&self) -> usize {
        let mut seen = vec![false; self.num_cols];
        for &c in &self.col_idx {
            seen[c as usize] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }
}

impl fmt::Debug for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrMatrix({}×{}, nnz={})",
            self.num_rows(),
            self.num_cols,
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> CsrMatrix {
        // [1 0 2]
        // [0 3 0]
        // [4 5 6]
        let mut b = CsrBuilder::new(3);
        b.push_row(&[(0, 1.0), (2, 2.0)]);
        b.push_row(&[(1, 3.0)]);
        b.push_row(&[(0, 4.0), (1, 5.0), (2, 6.0)]);
        b.build()
    }

    #[test]
    fn shape_and_rows() {
        let a = small();
        assert_eq!(a.shape(), (3, 3));
        assert_eq!(a.nnz(), 6);
        let (cols, vals) = a.row(2);
        assert_eq!(cols, &[0, 1, 2]);
        assert_eq!(vals, &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(a.matvec(&x), vec![7.0, 6.0, 32.0]);
    }

    #[test]
    fn matvec_t_matches_dense() {
        let a = small();
        let y = [1.0, 2.0, 3.0];
        // Aᵀy = [1*1+4*3, 3*2+5*3, 2*1+6*3]
        assert_eq!(a.matvec_t(&y), vec![13.0, 21.0, 20.0]);
    }

    #[test]
    fn row_norms() {
        let a = small();
        assert_eq!(a.row_norm_sq(0), 5.0);
        assert_eq!(a.row_norms_sq(), vec![5.0, 9.0, 77.0]);
    }

    #[test]
    fn scatter_row_accumulates() {
        let a = small();
        let mut z = vec![0.0; 3];
        a.scatter_row(2, 2.0, &mut z);
        assert_eq!(z, vec![8.0, 10.0, 12.0]);
        a.scatter_row(0, 1.0, &mut z);
        assert_eq!(z, vec![9.0, 10.0, 14.0]);
    }

    #[test]
    fn select_rows_preserves_content() {
        let a = small();
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(s.row(0).1, a.row(2).1);
        assert_eq!(s.row(1).1, a.row(0).1);
    }

    #[test]
    fn covered_columns_counts_nonempty() {
        let a = small();
        assert_eq!(a.covered_columns(), 3);
        let s = a.select_rows(&[1]);
        assert_eq!(s.covered_columns(), 1);
    }

    #[test]
    fn transpose_round_trips() {
        let a = small();
        let at = a.transpose();
        assert_eq!(at.shape(), (3, 3));
        // Column 0 of A held 1.0 (row 0) and 4.0 (row 2).
        assert_eq!(at.row(0), (&[0u32, 2][..], &[1.0, 4.0][..]));
        assert_eq!(at.transpose(), a);
    }

    #[test]
    fn transpose_handles_empty_columns_and_rows() {
        let mut b = CsrBuilder::new(4);
        b.push_row(&[]);
        b.push_row(&[(2, 7.0)]);
        let a = b.build();
        let at = a.transpose();
        assert_eq!(at.shape(), (4, 2));
        assert_eq!(at.row(0), (&[][..], &[][..]));
        assert_eq!(at.row(2), (&[1u32][..], &[7.0][..]));
        assert_eq!(at.transpose(), a);
    }

    /// A random-ish matrix big enough to cross `PAR_ROW_THRESHOLD`.
    fn large(m: usize, n: usize) -> CsrMatrix {
        let mut b = CsrBuilder::new(n);
        for i in 0..m {
            let c0 = i % n;
            let c1 = (i * 7 + 3) % n;
            let c2 = (i * 13 + 1) % n;
            b.push_row(&[
                (c0, (i % 17) as f64 * 0.37 - 2.0),
                (c1, (i % 5) as f64 + 0.25),
                (c2, 1.0 / (i + 1) as f64),
            ]);
        }
        b.build()
    }

    #[test]
    fn parallel_kernels_are_bit_identical_across_thread_counts() {
        use parallel::Parallelism;
        let a = large(3000, 200);
        let x: Vec<f64> = (0..200).map(|j| (j as f64 * 0.11).sin()).collect();
        let y: Vec<f64> = (0..3000).map(|i| (i as f64 * 0.07).cos()).collect();
        let serial = Parallelism::serial();
        for threads in [2, 4] {
            let par = Parallelism::new(threads);
            assert_eq!(a.matvec_par(&x, serial), a.matvec_par(&x, par));
            assert_eq!(a.row_norms_sq_par(serial), a.row_norms_sq_par(par));
            assert_eq!(a.matvec_t_par(&y, serial), a.matvec_t_par(&y, par));
        }
        // The parallel row kernels reuse the per-row serial dots, so they
        // also match the plain serial entry points exactly.
        assert_eq!(a.matvec_par(&x, Parallelism::new(4)), a.matvec(&x));
        assert_eq!(a.row_norms_sq_par(Parallelism::new(4)), a.row_norms_sq());
    }

    #[test]
    fn matvec_t_par_matches_serial_scatter() {
        use parallel::Parallelism;
        let a = large(1000, 64);
        let y: Vec<f64> = (0..1000).map(|i| ((i % 9) as f64) - 4.0).collect();
        let scatter = a.matvec_t(&y);
        let par = a.matvec_t_par(&y, Parallelism::new(4));
        assert_eq!(scatter.len(), par.len());
        for (s, p) in scatter.iter().zip(&par) {
            assert!((s - p).abs() < 1e-9, "{s} vs {p}");
        }
    }

    #[test]
    fn set_row_values_overwrites_in_place() {
        let mut a = small();
        a.set_row_values(2, &[7.0, 8.0, 9.0]);
        assert_eq!(a.row(2), (&[0u32, 1, 2][..], &[7.0, 8.0, 9.0][..]));
        // Other rows untouched.
        assert_eq!(a.row(0).1, &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "set_row_values: row 1 stores 1 entries")]
    fn set_row_values_rejects_pattern_changes() {
        let mut a = small();
        a.set_row_values(1, &[1.0, 2.0]);
    }

    #[test]
    fn patched_transpose_is_bit_identical_to_fresh_transpose() {
        let a = large(600, 40);
        let mut patched = a.clone();
        let mut at = a.transpose();
        // Rewrite a scattered set of rows, patching the transpose after
        // each, exactly like an incremental refit does.
        for &r in &[0usize, 17, 17, 313, 599] {
            let new_vals: Vec<f64> = a
                .row(r)
                .1
                .iter()
                .enumerate()
                .map(|(k, v)| v * 1.5 + k as f64)
                .collect();
            patched.set_row_values(r, &new_vals);
            let cols = patched.row(r).0.to_vec();
            at.patch_transposed_row(r, &cols, &new_vals);
        }
        assert_eq!(at, patched.transpose());
    }

    #[test]
    fn patched_transpose_handles_duplicate_columns() {
        // Duplicate columns within a row mirror to consecutive transpose
        // entries; patching must keep their original order.
        let mut b = CsrBuilder::new(3);
        b.push_row(&[(1, 1.0), (1, 2.0), (0, 3.0)]);
        b.push_row(&[(1, 4.0)]);
        let mut a = b.build();
        let mut at = a.transpose();
        a.set_row_values(0, &[10.0, 20.0, 30.0]);
        at.patch_transposed_row(0, a.row(0).0, &[10.0, 20.0, 30.0]);
        assert_eq!(at, a.transpose());
        assert_eq!(at.row(1), (&[0u32, 0, 1][..], &[10.0, 20.0, 4.0][..]));
    }

    #[test]
    #[should_panic(expected = "not stored")]
    fn patch_transposed_row_rejects_new_entries() {
        let a = small();
        let mut at = a.transpose();
        // Row 1 of `small` has no column-0 entry.
        at.patch_transposed_row(1, &[0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "column 5 out of range")]
    fn out_of_range_column_panics() {
        let mut b = CsrBuilder::new(3);
        b.push_row(&[(5, 1.0)]);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", small()), "CsrMatrix(3×3, nnz=6)");
    }

    proptest! {
        /// matvec agrees with a dense reference on random sparse matrices.
        #[test]
        fn prop_matvec_matches_dense_reference(
            rows in prop::collection::vec(
                prop::collection::vec((0usize..8, -10.0f64..10.0), 0..6),
                1..10
            ),
            x in prop::collection::vec(-5.0f64..5.0, 8),
        ) {
            let mut b = CsrBuilder::new(8);
            let mut dense = vec![vec![0.0; 8]; rows.len()];
            for (i, row) in rows.iter().enumerate() {
                b.push_row(row);
                for &(c, v) in row {
                    dense[i][c] += v;
                }
            }
            let a = b.build();
            let y = a.matvec(&x);
            for (i, d) in dense.iter().enumerate() {
                let expect: f64 = d.iter().zip(&x).map(|(m, xv)| m * xv).sum();
                prop_assert!((y[i] - expect).abs() < 1e-9);
            }
        }

        /// Aᵀ(A x) computed via matvec_t equals the dense normal-equation
        /// product.
        #[test]
        fn prop_transpose_consistent(
            rows in prop::collection::vec(
                prop::collection::vec((0usize..6, -3.0f64..3.0), 1..5),
                1..8
            ),
            x in prop::collection::vec(-2.0f64..2.0, 6),
        ) {
            let mut b = CsrBuilder::new(6);
            for row in &rows {
                b.push_row(row);
            }
            let a = b.build();
            let ax = a.matvec(&x);
            let atax = a.matvec_t(&ax);
            // Reference: accumulate dense AᵀA x.
            let mut dense = vec![vec![0.0; 6]; rows.len()];
            for (i, row) in rows.iter().enumerate() {
                for &(c, v) in row {
                    dense[i][c] += v;
                }
            }
            for j in 0..6 {
                let mut expect = 0.0;
                for d in &dense {
                    let r: f64 = d.iter().zip(&x).map(|(m, xv)| m * xv).sum();
                    expect += d[j] * r;
                }
                prop_assert!((atax[j] - expect).abs() < 1e-6);
            }
        }

        /// Row selection preserves per-row dot products.
        #[test]
        fn prop_select_rows_consistent(
            rows in prop::collection::vec(
                prop::collection::vec((0usize..5, -3.0f64..3.0), 0..4),
                2..8
            ),
            x in prop::collection::vec(-2.0f64..2.0, 5),
            pick in prop::collection::vec(0usize..100, 1..6),
        ) {
            let mut b = CsrBuilder::new(5);
            for row in &rows {
                b.push_row(row);
            }
            let a = b.build();
            let picks: Vec<usize> = pick.iter().map(|p| p % a.num_rows()).collect();
            let s = a.select_rows(&picks);
            for (si, &orig) in picks.iter().enumerate() {
                prop_assert!((s.row_dot(si, &x) - a.row_dot(orig, &x)).abs() < 1e-9);
            }
        }
    }
}
