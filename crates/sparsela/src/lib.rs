//! Sparse linear-algebra kernels for the mGBA optimization solver.
//!
//! The mGBA fitting problem is a least-squares system `A·x ≈ b` where `A`
//! is the (paths × gates) incidence matrix of Eq. (9) in the paper — each
//! row holds the derated delays of the gates on one path, so it is
//! extremely sparse (a path visits tens of gates out of thousands). This
//! crate provides exactly the kernels the solvers in [`mgba`] need:
//!
//! - [`CsrMatrix`] — compressed sparse row storage with `A·x`, `Aᵀ·y`,
//!   row slicing, and row-norm queries;
//! - [`sampling`] — uniform row sampling (Algorithm 1 of the paper) and
//!   norm-proportional row sampling (the randomized-Kaczmarz distribution
//!   of Eq. (11));
//! - [`kaczmarz`] — a reference randomized Kaczmarz solver;
//! - [`vecops`] — the handful of dense vector operations used everywhere.
//!
//! [`mgba`]: https://docs.rs/mgba

pub mod csr;
pub mod kaczmarz;
pub mod sampling;
pub mod vecops;

pub use csr::{CsrBuilder, CsrMatrix};
pub use sampling::{NormSampler, UniformSampler};
