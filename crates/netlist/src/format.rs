//! Plain-text netlist interchange format.
//!
//! A deliberately simple, line-oriented format for persisting generated
//! designs and inspecting them with ordinary text tools:
//!
//! ```text
//! design tiny
//! library std45
//! cell ff0 DFF_X1 seq 10 0
//! cell u_inv INV_X1 comb 20 5
//! net ff0_out driver=ff0 sinks=u_inv:0
//! end
//! ```
//!
//! Roles: `input`, `output`, `clock`, `seq`, `clkbuf`, `comb`.
//! Only designs mapped to the [`Library::standard`] library (`std45`) can
//! be re-read, because the format stores library cell *names*, not
//! characterization data.

use crate::cell::{Cell, CellRole};
use crate::ids::{CellId, NetId, PinIndex};
use crate::library::Library;
use crate::netlist::{Net, Netlist};
use crate::point::Point;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Errors produced by [`parse_netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNetlistError {
    /// A line could not be parsed; carries the 1-based line number and a
    /// description.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The file references a library other than `std45`.
    UnsupportedLibrary(String),
    /// The parsed netlist failed structural validation.
    Invalid(String),
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetlistError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseNetlistError::UnsupportedLibrary(l) => {
                write!(f, "unsupported library `{l}` (only std45 can be re-read)")
            }
            ParseNetlistError::Invalid(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl Error for ParseNetlistError {}

fn role_token(role: CellRole) -> &'static str {
    match role {
        CellRole::Input => "input",
        CellRole::Output => "output",
        CellRole::ClockSource => "clock",
        CellRole::Sequential => "seq",
        CellRole::ClockBuffer => "clkbuf",
        CellRole::Combinational => "comb",
    }
}

fn parse_role(tok: &str) -> Option<CellRole> {
    Some(match tok {
        "input" => CellRole::Input,
        "output" => CellRole::Output,
        "clock" => CellRole::ClockSource,
        "seq" => CellRole::Sequential,
        "clkbuf" => CellRole::ClockBuffer,
        "comb" => CellRole::Combinational,
        _ => return None,
    })
}

/// Serializes `netlist` to the text format.
///
/// The output is stable: cells and nets appear in id order, so diffs
/// between two dumps of the same design are meaningful.
pub fn write_netlist(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "design {}", netlist.name());
    let _ = writeln!(out, "library {}", netlist.library().name());
    for (_, cell) in netlist.cells() {
        let lib = netlist.library().cell(cell.lib_cell);
        // Default f64 formatting is the shortest string that round-trips
        // exactly, so parsed placements (and therefore timing) are
        // bit-identical.
        let _ = writeln!(
            out,
            "cell {} {} {} {} {}",
            cell.name,
            lib.name,
            role_token(cell.role),
            cell.loc.x,
            cell.loc.y
        );
    }
    for (id, net) in netlist.nets() {
        let driver = net
            .driver
            .map(|d| netlist.cell(d).name.clone())
            .unwrap_or_else(|| "-".to_owned());
        let sinks: Vec<String> = net
            .sinks
            .iter()
            .map(|&(c, p)| format!("{}:{}", netlist.cell(c).name, p.0))
            .collect();
        let _ = writeln!(
            out,
            "net {} driver={} sinks={}",
            net.name,
            driver,
            sinks.join(",")
        );
        let _ = id;
    }
    out.push_str("end\n");
    out
}

/// Parses the text format back into a [`Netlist`].
///
/// # Errors
///
/// Returns [`ParseNetlistError`] on malformed lines, unknown library cells,
/// libraries other than `std45`, or if the reconstructed netlist fails
/// [`Netlist::validate`].
pub fn parse_netlist(text: &str) -> Result<Netlist, ParseNetlistError> {
    let malformed = |line: usize, reason: &str| ParseNetlistError::Malformed {
        line,
        reason: reason.to_owned(),
    };

    let library = Library::standard();
    let mut design_name = String::new();
    let mut cells: Vec<Cell> = Vec::new();
    let mut nets: Vec<Net> = Vec::new();
    let mut cell_names: HashMap<String, CellId> = HashMap::new();
    let mut net_names: HashMap<String, NetId> = HashMap::new();
    let mut saw_end = false;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if saw_end {
            return Err(malformed(lineno, "content after `end`"));
        }
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some("design") => {
                design_name = toks
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing design name"))?
                    .to_owned();
            }
            Some("library") => {
                let name = toks
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing library name"))?;
                if name != library.name() {
                    return Err(ParseNetlistError::UnsupportedLibrary(name.to_owned()));
                }
            }
            Some("cell") => {
                let name = toks
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing cell name"))?;
                let lib_name = toks
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing library cell"))?;
                let role_tok = toks
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing role"))?;
                // Non-finite coordinates would silently poison every
                // downstream wire length and slack, so reject them here.
                let x: f64 = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .filter(|v: &f64| v.is_finite())
                    .ok_or_else(|| malformed(lineno, "bad x coordinate"))?;
                let y: f64 = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .filter(|v: &f64| v.is_finite())
                    .ok_or_else(|| malformed(lineno, "bad y coordinate"))?;
                let lib_cell = library.find(lib_name).ok_or_else(|| {
                    malformed(lineno, &format!("unknown library cell `{lib_name}`"))
                })?;
                let role = parse_role(role_tok)
                    .ok_or_else(|| malformed(lineno, &format!("unknown role `{role_tok}`")))?;
                if cell_names.contains_key(name) {
                    return Err(malformed(lineno, &format!("duplicate cell `{name}`")));
                }
                let function = library.cell(lib_cell).function;
                let id = CellId::new(cells.len());
                cell_names.insert(name.to_owned(), id);
                cells.push(Cell::new(
                    name.to_owned(),
                    lib_cell,
                    function,
                    role,
                    Point::new(x, y),
                ));
            }
            Some("net") => {
                let name = toks
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing net name"))?;
                let driver_tok = toks
                    .next()
                    .and_then(|t| t.strip_prefix("driver="))
                    .ok_or_else(|| malformed(lineno, "missing driver="))?;
                let sinks_tok = toks
                    .next()
                    .and_then(|t| t.strip_prefix("sinks="))
                    .ok_or_else(|| malformed(lineno, "missing sinks="))?;
                let driver = if driver_tok == "-" {
                    None
                } else {
                    Some(*cell_names.get(driver_tok).ok_or_else(|| {
                        malformed(lineno, &format!("unknown driver `{driver_tok}`"))
                    })?)
                };
                let mut sinks = Vec::new();
                if !sinks_tok.is_empty() {
                    for s in sinks_tok.split(',') {
                        let (cname, pin) = s.split_once(':').ok_or_else(|| {
                            malformed(lineno, &format!("bad sink `{s}` (want cell:pin)"))
                        })?;
                        let cid = *cell_names
                            .get(cname)
                            .ok_or_else(|| malformed(lineno, &format!("unknown sink `{cname}`")))?;
                        let pin: u8 = pin
                            .parse()
                            .map_err(|_| malformed(lineno, &format!("bad pin in `{s}`")))?;
                        sinks.push((cid, PinIndex(pin)));
                    }
                }
                let net_id = NetId::new(nets.len());
                if net_names.contains_key(name) {
                    return Err(malformed(lineno, &format!("duplicate net `{name}`")));
                }
                net_names.insert(name.to_owned(), net_id);
                // Wire the referenced pins.
                if let Some(d) = driver {
                    cells[d.index()].output = Some(net_id);
                }
                for &(c, p) in &sinks {
                    let slot = cells[c.index()].inputs.get_mut(p.index()).ok_or_else(|| {
                        malformed(lineno, &format!("pin {p} out of range on sink"))
                    })?;
                    *slot = Some(net_id);
                }
                nets.push(Net {
                    name: name.to_owned(),
                    driver,
                    sinks,
                });
            }
            Some("end") => saw_end = true,
            Some(other) => {
                return Err(malformed(lineno, &format!("unknown directive `{other}`")));
            }
            None => unreachable!("blank lines are skipped"),
        }
    }

    let netlist = Netlist::from_parts(design_name, library, cells, nets, cell_names, net_names);
    netlist
        .validate()
        .map_err(|e| ParseNetlistError::Invalid(e.to_string()))?;
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::GeneratorConfig;

    #[test]
    fn round_trip_small_design() {
        let original = GeneratorConfig::small(5).generate();
        let text = write_netlist(&original);
        let parsed = parse_netlist(&text).unwrap();
        assert_eq!(parsed.name(), original.name());
        assert_eq!(parsed.num_cells(), original.num_cells());
        assert_eq!(parsed.num_nets(), original.num_nets());
        assert_eq!(parsed.total_area(), original.total_area());
        // Second dump is byte-identical (stable ordering).
        assert_eq!(write_netlist(&parsed), text);
    }

    #[test]
    fn rejects_unknown_library() {
        let err = parse_netlist("design x\nlibrary exotic\nend\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::UnsupportedLibrary(_)));
    }

    #[test]
    fn rejects_malformed_cell_line() {
        let err = parse_netlist("design x\nlibrary std45\ncell only_name\nend\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::Malformed { line: 3, .. }));
    }

    #[test]
    fn rejects_non_finite_coordinates() {
        for bad in ["NaN", "inf", "-inf"] {
            let text = format!("design x\nlibrary std45\ncell a INV_X1 comb {bad} 0\nend\n");
            let err = parse_netlist(&text).unwrap_err();
            assert!(
                matches!(err, ParseNetlistError::Malformed { line: 3, .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn rejects_unknown_sink() {
        let text = "design x\nlibrary std45\nnet n driver=- sinks=ghost:0\nend\n";
        let err = parse_netlist(text).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn rejects_content_after_end() {
        let err =
            parse_netlist("design x\nlibrary std45\nend\ncell a INV_X1 comb 0 0\n").unwrap_err();
        assert!(err.to_string().contains("after `end`"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let original = GeneratorConfig::small(9).generate();
        let mut text = String::from("# header comment\n\n");
        text.push_str(&write_netlist(&original));
        let parsed = parse_netlist(&text).unwrap();
        assert_eq!(parsed.num_cells(), original.num_cells());
    }

    #[test]
    fn invalid_structure_is_reported() {
        // A flip-flop with an unconnected D pin.
        let text = "design x\nlibrary std45\ncell ff DFF_X1 seq 0 0\nend\n";
        let err = parse_netlist(text).unwrap_err();
        assert!(matches!(err, ParseNetlistError::Invalid(_)));
    }
}
