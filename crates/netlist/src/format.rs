//! Plain-text netlist interchange format.
//!
//! A deliberately simple, line-oriented format for persisting generated
//! designs and inspecting them with ordinary text tools:
//!
//! ```text
//! design tiny
//! library std45
//! cell ff0 DFF_X1 seq 10 0
//! cell u_inv INV_X1 comb 20 5
//! net ff0_out driver=ff0 sinks=u_inv:0
//! end
//! ```
//!
//! Roles: `input`, `output`, `clock`, `seq`, `clkbuf`, `comb`.
//! Only designs mapped to the [`Library::standard`] library (`std45`) can
//! be re-read, because the format stores library cell *names*, not
//! characterization data.

use crate::cell::{Cell, CellRole};
use crate::ids::{CellId, NetId, PinIndex};
use crate::library::Library;
use crate::lint::{codes, lint_netlist_spanned, LintReport, SourceMap, SrcSpan};
use crate::netlist::{Net, Netlist};
use crate::point::Point;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Errors produced by [`parse_netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNetlistError {
    /// A line could not be parsed; carries the 1-based line number and a
    /// description.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The file references a library other than `std45`.
    UnsupportedLibrary(String),
    /// The parsed netlist failed structural validation.
    Invalid(String),
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetlistError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseNetlistError::UnsupportedLibrary(l) => {
                write!(f, "unsupported library `{l}` (only std45 can be re-read)")
            }
            ParseNetlistError::Invalid(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl Error for ParseNetlistError {}

fn role_token(role: CellRole) -> &'static str {
    match role {
        CellRole::Input => "input",
        CellRole::Output => "output",
        CellRole::ClockSource => "clock",
        CellRole::Sequential => "seq",
        CellRole::ClockBuffer => "clkbuf",
        CellRole::Combinational => "comb",
    }
}

fn parse_role(tok: &str) -> Option<CellRole> {
    Some(match tok {
        "input" => CellRole::Input,
        "output" => CellRole::Output,
        "clock" => CellRole::ClockSource,
        "seq" => CellRole::Sequential,
        "clkbuf" => CellRole::ClockBuffer,
        "comb" => CellRole::Combinational,
        _ => return None,
    })
}

/// Serializes `netlist` to the text format.
///
/// The output is stable: cells and nets appear in id order, so diffs
/// between two dumps of the same design are meaningful.
pub fn write_netlist(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "design {}", netlist.name());
    let _ = writeln!(out, "library {}", netlist.library().name());
    for (_, cell) in netlist.cells() {
        let lib = netlist.library().cell(cell.lib_cell);
        // Default f64 formatting is the shortest string that round-trips
        // exactly, so parsed placements (and therefore timing) are
        // bit-identical.
        let _ = writeln!(
            out,
            "cell {} {} {} {} {}",
            cell.name,
            lib.name,
            role_token(cell.role),
            cell.loc.x,
            cell.loc.y
        );
    }
    for (id, net) in netlist.nets() {
        let driver = net
            .driver
            .map(|d| netlist.cell(d).name.clone())
            .unwrap_or_else(|| "-".to_owned());
        let sinks: Vec<String> = net
            .sinks
            .iter()
            .map(|&(c, p)| format!("{}:{}", netlist.cell(c).name, p.0))
            .collect();
        let _ = writeln!(
            out,
            "net {} driver={} sinks={}",
            net.name,
            driver,
            sinks.join(",")
        );
        let _ = id;
    }
    out.push_str("end\n");
    out
}

/// Best-effort single pass over the text format: parses every line it
/// can, accumulating one [`LintIssue`](crate::lint::LintIssue) per
/// defect instead of stopping. Both the strict loader
/// ([`parse_netlist`]) and the collected-issues linter
/// ([`lint_netlist_text`]) sit on this one scanner, so the two paths
/// can never disagree on what a defect is.
struct Scan {
    design_name: String,
    library: Library,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    cell_names: HashMap<String, CellId>,
    net_names: HashMap<String, NetId>,
    report: LintReport,
    sources: SourceMap,
    /// First non-`std45` library name seen (maps back to
    /// [`ParseNetlistError::UnsupportedLibrary`] in the strict loader).
    unsupported: Option<String>,
}

/// 1-based span of `token` within `raw` (column 1 when absent).
fn span_of(raw: &str, lineno: usize, token: &str) -> SrcSpan {
    let col = raw.find(token).map(|i| i + 1).unwrap_or(1);
    SrcSpan::new(lineno as u32, col as u32)
}

fn scan_netlist(text: &str) -> Scan {
    let mut scan = Scan {
        design_name: String::new(),
        library: Library::standard(),
        cells: Vec::new(),
        nets: Vec::new(),
        cell_names: HashMap::new(),
        net_names: HashMap::new(),
        report: LintReport::new(),
        sources: SourceMap::new(),
        unsupported: None,
    };
    let mut saw_end = false;

    'lines: for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let at_start = SrcSpan::new(lineno as u32, 1);
        if saw_end {
            scan.report
                .error(codes::MALFORMED, Some(at_start), "content after `end`");
            continue;
        }
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some("design") => match toks.next() {
                Some(name) => scan.design_name = name.to_owned(),
                None => scan
                    .report
                    .error(codes::MALFORMED, Some(at_start), "missing design name"),
            },
            Some("library") => {
                let Some(name) = toks.next() else {
                    scan.report
                        .error(codes::MALFORMED, Some(at_start), "missing library name");
                    continue;
                };
                if name != scan.library.name() {
                    scan.report.error(
                        codes::UNSUPPORTED_LIBRARY,
                        Some(span_of(raw, lineno, name)),
                        format!("unsupported library `{name}` (only std45 can be re-read)"),
                    );
                    if scan.unsupported.is_none() {
                        scan.unsupported = Some(name.to_owned());
                    }
                }
            }
            Some("cell") => {
                let Some(name) = toks.next() else {
                    scan.report
                        .error(codes::MALFORMED, Some(at_start), "missing cell name");
                    continue;
                };
                let Some(lib_name) = toks.next() else {
                    scan.report
                        .error(codes::MALFORMED, Some(at_start), "missing library cell");
                    continue;
                };
                let Some(role_tok) = toks.next() else {
                    scan.report
                        .error(codes::MALFORMED, Some(at_start), "missing role");
                    continue;
                };
                // Non-finite coordinates would silently poison every
                // downstream wire length and slack, so reject them here.
                let x_tok = toks.next();
                let Some(x) = x_tok
                    .and_then(|t| t.parse().ok())
                    .filter(|v: &f64| v.is_finite())
                else {
                    let code = if x_tok.map(|t| t.parse::<f64>().is_ok()).unwrap_or(false) {
                        codes::NON_FINITE_ATTR
                    } else {
                        codes::MALFORMED
                    };
                    scan.report.error(
                        code,
                        Some(span_of(raw, lineno, x_tok.unwrap_or(""))),
                        "bad x coordinate",
                    );
                    continue;
                };
                let y_tok = toks.next();
                let Some(y) = y_tok
                    .and_then(|t| t.parse().ok())
                    .filter(|v: &f64| v.is_finite())
                else {
                    let code = if y_tok.map(|t| t.parse::<f64>().is_ok()).unwrap_or(false) {
                        codes::NON_FINITE_ATTR
                    } else {
                        codes::MALFORMED
                    };
                    scan.report.error(
                        code,
                        Some(span_of(raw, lineno, y_tok.unwrap_or(""))),
                        "bad y coordinate",
                    );
                    continue;
                };
                let Some(lib_cell) = scan.library.find(lib_name) else {
                    scan.report.error(
                        codes::UNRESOLVED_REF,
                        Some(span_of(raw, lineno, lib_name)),
                        format!("unknown library cell `{lib_name}`"),
                    );
                    continue;
                };
                let Some(role) = parse_role(role_tok) else {
                    scan.report.error(
                        codes::MALFORMED,
                        Some(span_of(raw, lineno, role_tok)),
                        format!("unknown role `{role_tok}`"),
                    );
                    continue;
                };
                if scan.cell_names.contains_key(name) {
                    scan.report.error(
                        codes::DUPLICATE_CELL,
                        Some(span_of(raw, lineno, name)),
                        format!("duplicate cell `{name}`"),
                    );
                    continue;
                }
                let function = scan.library.cell(lib_cell).function;
                let id = CellId::new(scan.cells.len());
                scan.cell_names.insert(name.to_owned(), id);
                scan.sources
                    .cells
                    .insert(name.to_owned(), span_of(raw, lineno, name));
                scan.cells.push(Cell::new(
                    name.to_owned(),
                    lib_cell,
                    function,
                    role,
                    Point::new(x, y),
                ));
            }
            Some("net") => {
                let Some(name) = toks.next() else {
                    scan.report
                        .error(codes::MALFORMED, Some(at_start), "missing net name");
                    continue;
                };
                let Some(driver_tok) = toks.next().and_then(|t| t.strip_prefix("driver=")) else {
                    scan.report
                        .error(codes::MALFORMED, Some(at_start), "missing driver=");
                    continue;
                };
                let Some(sinks_tok) = toks.next().and_then(|t| t.strip_prefix("sinks=")) else {
                    scan.report
                        .error(codes::MALFORMED, Some(at_start), "missing sinks=");
                    continue;
                };
                let driver = if driver_tok == "-" {
                    None
                } else {
                    match scan.cell_names.get(driver_tok) {
                        Some(&d) => Some(d),
                        None => {
                            scan.report.error(
                                codes::UNRESOLVED_REF,
                                Some(span_of(raw, lineno, driver_tok)),
                                format!("unknown driver `{driver_tok}`"),
                            );
                            continue;
                        }
                    }
                };
                let mut sinks = Vec::new();
                if !sinks_tok.is_empty() {
                    for s in sinks_tok.split(',') {
                        let Some((cname, pin)) = s.split_once(':') else {
                            scan.report.error(
                                codes::MALFORMED,
                                Some(span_of(raw, lineno, s)),
                                format!("bad sink `{s}` (want cell:pin)"),
                            );
                            continue 'lines;
                        };
                        let Some(&cid) = scan.cell_names.get(cname) else {
                            scan.report.error(
                                codes::UNRESOLVED_REF,
                                Some(span_of(raw, lineno, cname)),
                                format!("unknown sink `{cname}`"),
                            );
                            continue 'lines;
                        };
                        let Ok(pin) = pin.parse::<u8>() else {
                            scan.report.error(
                                codes::MALFORMED,
                                Some(span_of(raw, lineno, s)),
                                format!("bad pin in `{s}`"),
                            );
                            continue 'lines;
                        };
                        sinks.push((cid, PinIndex(pin)));
                    }
                }
                if scan.net_names.contains_key(name) {
                    scan.report.error(
                        codes::DUPLICATE_NET,
                        Some(span_of(raw, lineno, name)),
                        format!("duplicate net `{name}`"),
                    );
                    continue;
                }
                // Pin ranges, before any wiring mutates cell state.
                for &(c, p) in &sinks {
                    if scan.cells[c.index()].inputs.get(p.index()).is_none() {
                        scan.report.error(
                            codes::UNCONNECTED_PIN,
                            Some(at_start),
                            format!("pin {p} out of range on sink"),
                        );
                        continue 'lines;
                    }
                }
                let net_id = NetId::new(scan.nets.len());
                scan.net_names.insert(name.to_owned(), net_id);
                scan.sources
                    .nets
                    .insert(name.to_owned(), span_of(raw, lineno, name));
                // Wire the referenced pins.
                if let Some(d) = driver {
                    scan.cells[d.index()].output = Some(net_id);
                }
                for &(c, p) in &sinks {
                    scan.cells[c.index()].inputs[p.index()] = Some(net_id);
                }
                scan.nets.push(Net {
                    name: name.to_owned(),
                    driver,
                    sinks,
                });
            }
            Some("end") => saw_end = true,
            Some(other) => {
                scan.report.error(
                    codes::MALFORMED,
                    Some(span_of(raw, lineno, other)),
                    format!("unknown directive `{other}`"),
                );
            }
            None => unreachable!("blank lines are skipped"),
        }
    }
    scan
}

impl Scan {
    fn into_netlist(self) -> (Netlist, LintReport, SourceMap) {
        let netlist = Netlist::from_parts(
            self.design_name,
            self.library,
            self.cells,
            self.nets,
            self.cell_names,
            self.net_names,
        );
        (netlist, self.report, self.sources)
    }
}

/// Parses the text format back into a [`Netlist`].
///
/// # Errors
///
/// Returns [`ParseNetlistError`] on malformed lines, unknown library cells,
/// libraries other than `std45`, or if the reconstructed netlist fails
/// [`Netlist::validate`]. The error is the first error-severity issue the
/// collected-issues scanner ([`lint_netlist_text`]) reports.
pub fn parse_netlist(text: &str) -> Result<Netlist, ParseNetlistError> {
    let scan = scan_netlist(text);
    if let Some(first) = scan.report.first_error() {
        if first.code == codes::UNSUPPORTED_LIBRARY {
            return Err(ParseNetlistError::UnsupportedLibrary(
                scan.unsupported.clone().unwrap_or_default(),
            ));
        }
        return Err(ParseNetlistError::Malformed {
            line: first.span.map(|s| s.line as usize).unwrap_or(0),
            reason: first.message.clone(),
        });
    }
    let (netlist, _, _) = scan.into_netlist();
    netlist
        .validate()
        .map_err(|e| ParseNetlistError::Invalid(e.to_string()))?;
    Ok(netlist)
}

/// Lints the text format: one pass collecting *every* parse-level issue
/// (duplicates, unresolved references, bad attributes — with line/col
/// spans) plus every structural issue on the partially-reconstructed
/// netlist (undriven/multiply-driven nets, dangling ports,
/// combinational cycles, clocking). Returns the best-effort netlist
/// alongside the report; the netlist is only safe to time when
/// `report.num_errors() == 0`.
pub fn lint_netlist_text(text: &str) -> (Netlist, LintReport) {
    let scan = scan_netlist(text);
    let (netlist, mut report, sources) = scan.into_netlist();
    report.merge(lint_netlist_spanned(&netlist, &sources));
    (netlist, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::GeneratorConfig;

    #[test]
    fn round_trip_small_design() {
        let original = GeneratorConfig::small(5).generate();
        let text = write_netlist(&original);
        let parsed = parse_netlist(&text).unwrap();
        assert_eq!(parsed.name(), original.name());
        assert_eq!(parsed.num_cells(), original.num_cells());
        assert_eq!(parsed.num_nets(), original.num_nets());
        assert_eq!(parsed.total_area(), original.total_area());
        // Second dump is byte-identical (stable ordering).
        assert_eq!(write_netlist(&parsed), text);
    }

    #[test]
    fn rejects_unknown_library() {
        let err = parse_netlist("design x\nlibrary exotic\nend\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::UnsupportedLibrary(_)));
    }

    #[test]
    fn rejects_malformed_cell_line() {
        let err = parse_netlist("design x\nlibrary std45\ncell only_name\nend\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::Malformed { line: 3, .. }));
    }

    #[test]
    fn rejects_non_finite_coordinates() {
        for bad in ["NaN", "inf", "-inf"] {
            let text = format!("design x\nlibrary std45\ncell a INV_X1 comb {bad} 0\nend\n");
            let err = parse_netlist(&text).unwrap_err();
            assert!(
                matches!(err, ParseNetlistError::Malformed { line: 3, .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn rejects_unknown_sink() {
        let text = "design x\nlibrary std45\nnet n driver=- sinks=ghost:0\nend\n";
        let err = parse_netlist(text).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn rejects_content_after_end() {
        let err =
            parse_netlist("design x\nlibrary std45\nend\ncell a INV_X1 comb 0 0\n").unwrap_err();
        assert!(err.to_string().contains("after `end`"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let original = GeneratorConfig::small(9).generate();
        let mut text = String::from("# header comment\n\n");
        text.push_str(&write_netlist(&original));
        let parsed = parse_netlist(&text).unwrap();
        assert_eq!(parsed.num_cells(), original.num_cells());
    }

    #[test]
    fn invalid_structure_is_reported() {
        // A flip-flop with an unconnected D pin.
        let text = "design x\nlibrary std45\ncell ff DFF_X1 seq 0 0\nend\n";
        let err = parse_netlist(text).unwrap_err();
        assert!(matches!(err, ParseNetlistError::Invalid(_)));
    }

    #[test]
    fn lint_collects_every_defect_in_one_pass() {
        use crate::lint::codes;
        // Five distinct defect classes in a single document: a duplicate
        // cell, an unknown driver reference, an undriven net with sinks,
        // a combinational cycle, and a non-finite coordinate.
        let text = "design broken\n\
                    library std45\n\
                    cell a INV_X1 comb 0 0\n\
                    cell b INV_X1 comb 1 0\n\
                    cell a INV_X1 comb 2 0\n\
                    cell c INV_X1 comb NaN 0\n\
                    cell d INV_X1 comb 3 0\n\
                    cell e INV_X1 comb 4 0\n\
                    net loop_de driver=d sinks=e:0\n\
                    net loop_ed driver=e sinks=d:0\n\
                    net ghost driver=phantom sinks=a:0\n\
                    net floating driver=- sinks=b:0\n\
                    end\n";
        let (_, report) = lint_netlist_text(text);
        let has = |code: &str| report.issues.iter().any(|i| i.code == code);
        assert!(has(codes::DUPLICATE_CELL), "{}", report.render_text());
        assert!(has(codes::UNRESOLVED_REF), "{}", report.render_text());
        assert!(has(codes::UNDRIVEN_NET), "{}", report.render_text());
        assert!(has(codes::COMBINATIONAL_CYCLE), "{}", report.render_text());
        assert!(has(codes::NON_FINITE_ATTR), "{}", report.render_text());
        // Every parse-level issue carries its source line.
        let dup = report
            .issues
            .iter()
            .find(|i| i.code == codes::DUPLICATE_CELL)
            .unwrap();
        assert_eq!(dup.span.unwrap().line, 5);
        assert!(dup.span.unwrap().col > 1, "span points at the name token");
        // Strict parse surfaces the first of these errors, same message.
        let err = parse_netlist(text).unwrap_err();
        assert!(
            err.to_string().contains("duplicate cell `a`"),
            "strict loader shares the scanner: {err}"
        );
    }

    #[test]
    fn lint_is_clean_on_valid_designs() {
        let text = write_netlist(&GeneratorConfig::small(3).generate());
        let (netlist, report) = lint_netlist_text(&text);
        assert!(report.is_clean(), "{}", report.render_text());
        assert!(netlist.num_cells() > 0);
    }
}
