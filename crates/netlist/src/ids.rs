//! Strongly-typed identifiers for netlist entities.
//!
//! All identifiers are dense indices into the owning [`Netlist`]'s internal
//! vectors, so lookups are O(1) and the ids double as array indices in
//! downstream analyses (the STA engine keeps per-cell side tables keyed by
//! `CellId::index`).
//!
//! [`Netlist`]: crate::Netlist

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! dense_id {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` exceeds `u32::MAX`.
            #[inline]
            pub fn new(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "id index overflow");
                Self(index as u32)
            }

            /// Returns the dense index backing this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

dense_id! {
    /// Identifier of a cell instance within a [`Netlist`](crate::Netlist).
    CellId, "c"
}

dense_id! {
    /// Identifier of a net within a [`Netlist`](crate::Netlist).
    NetId, "n"
}

dense_id! {
    /// Identifier of a characterized cell within a [`Library`](crate::Library).
    LibCellId, "L"
}

/// Index of an input pin on a cell instance (`0`-based, in declaration
/// order; for flip-flops pin `0` is `D` and pin `1` is `CK`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PinIndex(pub u8);

impl PinIndex {
    /// The `D` data pin of a flip-flop.
    pub const FF_D: PinIndex = PinIndex(0);
    /// The `CK` clock pin of a flip-flop.
    pub const FF_CK: PinIndex = PinIndex(1);

    /// Returns the pin index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PinIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_indices() {
        let c = CellId::new(42);
        assert_eq!(c.index(), 42);
        assert_eq!(usize::from(c), 42);
        let n = NetId::new(0);
        assert_eq!(n.index(), 0);
        let l = LibCellId::new(7);
        assert_eq!(l.index(), 7);
    }

    #[test]
    fn display_is_tagged() {
        assert_eq!(CellId::new(3).to_string(), "c3");
        assert_eq!(NetId::new(9).to_string(), "n9");
        assert_eq!(LibCellId::new(1).to_string(), "L1");
        assert_eq!(PinIndex(2).to_string(), "p2");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(CellId::new(1) < CellId::new(2));
        assert!(NetId::new(0) < NetId::new(10));
    }

    #[test]
    fn pin_constants() {
        assert_eq!(PinIndex::FF_D.index(), 0);
        assert_eq!(PinIndex::FF_CK.index(), 1);
    }

    #[test]
    #[should_panic(expected = "id index overflow")]
    fn id_overflow_panics() {
        let _ = CellId::new(u32::MAX as usize + 1);
    }
}
