//! Placement geometry.
//!
//! AOCV derating depends on the *distance* between the two endpoints of a
//! timing path (Table 1 of the paper), so every cell instance carries a
//! placement location. Distances are in micrometres.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A placement location in micrometres.
///
/// ```
/// use netlist::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.manhattan(b), 7.0);
/// assert_eq!(a.euclidean(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate in micrometres.
    pub x: f64,
    /// Y coordinate in micrometres.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates in micrometres.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Manhattan (L1) distance to `other`, the metric used for wire-length
    /// estimation.
    #[inline]
    pub fn manhattan(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean (L2) distance to `other`, the metric used for AOCV
    /// bounding-box lookups.
    #[inline]
    pub fn euclidean(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Component-wise midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

/// An axis-aligned bounding box, grown incrementally over a set of points.
///
/// GBA derating uses the *worst* (largest) bounding box of any path through
/// a gate; [`BoundingBox`] accumulates that during graph traversal.
///
/// ```
/// use netlist::point::BoundingBox;
/// use netlist::Point;
/// let mut bb = BoundingBox::empty();
/// bb.include(Point::new(1.0, 2.0));
/// bb.include(Point::new(4.0, 6.0));
/// assert_eq!(bb.diagonal(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    min: Point,
    max: Point,
    empty: bool,
}

impl BoundingBox {
    /// Creates an empty bounding box containing no points.
    pub fn empty() -> Self {
        Self {
            min: Point::ORIGIN,
            max: Point::ORIGIN,
            empty: true,
        }
    }

    /// Creates a bounding box containing a single point.
    pub fn at(p: Point) -> Self {
        Self {
            min: p,
            max: p,
            empty: false,
        }
    }

    /// Returns `true` if no point has been included yet.
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// Grows the box to include `p`.
    pub fn include(&mut self, p: Point) {
        if self.empty {
            *self = Self::at(p);
            return;
        }
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Grows the box to include every point of `other`.
    pub fn union(&mut self, other: &BoundingBox) {
        if other.empty {
            return;
        }
        self.include(other.min);
        self.include(other.max);
    }

    /// Diagonal length of the box in micrometres; `0` when empty.
    ///
    /// This is the "distance" fed to the AOCV derate table.
    pub fn diagonal(&self) -> f64 {
        if self.empty {
            0.0
        } else {
            self.min.euclidean(self.max)
        }
    }

    /// Lower-left corner.
    ///
    /// # Panics
    ///
    /// Panics if the box is empty.
    pub fn min(&self) -> Point {
        assert!(!self.empty, "bounding box is empty");
        self.min
    }

    /// Upper-right corner.
    ///
    /// # Panics
    ///
    /// Panics if the box is empty.
    pub fn max(&self) -> Point {
        assert!(!self.empty, "bounding box is empty");
        self.max
    }
}

impl Default for BoundingBox {
    fn default() -> Self {
        Self::empty()
    }
}

impl FromIterator<Point> for BoundingBox {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        let mut bb = BoundingBox::empty();
        for p in iter {
            bb.include(p);
        }
        bb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_and_euclidean() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        assert_eq!(a.manhattan(b), 7.0);
        assert_eq!(a.euclidean(b), 5.0);
        assert_eq!(a.manhattan(a), 0.0);
    }

    #[test]
    fn midpoint_and_ops() {
        let a = Point::new(2.0, 0.0);
        let b = Point::new(0.0, 2.0);
        assert_eq!(a.midpoint(b), Point::new(1.0, 1.0));
        assert_eq!(a + b, Point::new(2.0, 2.0));
        assert_eq!(a - b, Point::new(2.0, -2.0));
    }

    #[test]
    fn empty_bounding_box_has_zero_diagonal() {
        let bb = BoundingBox::empty();
        assert!(bb.is_empty());
        assert_eq!(bb.diagonal(), 0.0);
    }

    #[test]
    fn bounding_box_grows() {
        let mut bb = BoundingBox::at(Point::new(5.0, 5.0));
        assert_eq!(bb.diagonal(), 0.0);
        bb.include(Point::new(2.0, 1.0));
        bb.include(Point::new(8.0, 9.0));
        assert_eq!(bb.min(), Point::new(2.0, 1.0));
        assert_eq!(bb.max(), Point::new(8.0, 9.0));
        assert_eq!(bb.diagonal(), 10.0);
    }

    #[test]
    fn union_of_boxes() {
        let mut a = BoundingBox::at(Point::new(0.0, 0.0));
        let b = BoundingBox::at(Point::new(3.0, 4.0));
        a.union(&b);
        assert_eq!(a.diagonal(), 5.0);
        let mut c = BoundingBox::empty();
        c.union(&a);
        assert_eq!(c.diagonal(), 5.0);
        a.union(&BoundingBox::empty());
        assert_eq!(a.diagonal(), 5.0);
    }

    #[test]
    fn collect_points_into_box() {
        let bb: BoundingBox = [Point::new(0.0, 0.0), Point::new(6.0, 8.0)]
            .into_iter()
            .collect();
        assert_eq!(bb.diagonal(), 10.0);
    }
}
