//! The netlist container, its builder, and structural validation.

use crate::cell::{Cell, CellRole};
use crate::ids::{CellId, LibCellId, NetId, PinIndex};
use crate::library::{Function, Library};
use crate::point::Point;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A net: one driver pin fanning out to zero or more sink pins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    /// Net name, unique within the netlist.
    pub name: String,
    /// The cell whose output pin drives this net (`None` only during
    /// construction).
    pub driver: Option<CellId>,
    /// Sink pins as `(cell, input pin index)` pairs.
    pub sinks: Vec<(CellId, PinIndex)>,
}

/// Errors detected while building or validating a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A referenced library cell name does not exist.
    UnknownLibCell(String),
    /// The named library cell has the wrong function for the requested role.
    WrongFunction {
        /// Offending library cell name.
        lib_cell: String,
        /// What the call site required.
        expected: &'static str,
    },
    /// Number of supplied input nets differs from the cell's arity.
    ArityMismatch {
        /// Instance name.
        cell: String,
        /// Pins the function has.
        expected: usize,
        /// Nets supplied.
        got: usize,
    },
    /// Two cells or nets share a name.
    DuplicateName(String),
    /// An input pin was left unconnected.
    UnconnectedPin {
        /// Instance name.
        cell: String,
        /// Offending pin.
        pin: usize,
    },
    /// A cell that must drive a net does not.
    MissingOutput(String),
    /// A combinational feedback loop was found (cycle through cells that
    /// are not flip-flops).
    CombinationalCycle(String),
    /// A flip-flop's clock pin does not trace back to a clock source.
    UnclockedFlipFlop(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownLibCell(n) => write!(f, "unknown library cell `{n}`"),
            BuildError::WrongFunction { lib_cell, expected } => {
                write!(f, "library cell `{lib_cell}` is not {expected}")
            }
            BuildError::ArityMismatch {
                cell,
                expected,
                got,
            } => write!(f, "cell `{cell}` takes {expected} inputs, got {got}"),
            BuildError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            BuildError::UnconnectedPin { cell, pin } => {
                write!(f, "cell `{cell}` input pin {pin} is unconnected")
            }
            BuildError::MissingOutput(n) => write!(f, "cell `{n}` output drives no net"),
            BuildError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through cell `{n}`")
            }
            BuildError::UnclockedFlipFlop(n) => {
                write!(f, "flip-flop `{n}` clock pin does not reach a clock source")
            }
        }
    }
}

impl Error for BuildError {}

/// An immutable-by-default gate-level netlist with placement.
///
/// Construct one with [`NetlistBuilder`] (or the synthetic
/// [`generate`](crate::generate) module). The timing-closure optimizer uses
/// the controlled mutation methods ([`Netlist::set_lib_cell`],
/// [`Netlist::insert_buffer`]) which preserve all structural invariants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    library: Library,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    cell_names: HashMap<String, CellId>,
    net_names: HashMap<String, NetId>,
}

impl Netlist {
    /// Assembles a netlist from pre-built parts (used by the parser).
    pub(crate) fn from_parts(
        name: String,
        library: Library,
        cells: Vec<Cell>,
        nets: Vec<Net>,
        cell_names: HashMap<String, CellId>,
        net_names: HashMap<String, NetId>,
    ) -> Self {
        Self {
            name,
            library,
            cells,
            nets,
            cell_names,
            net_names,
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A copy of this netlist remapped to a delay-scaled library (PVT
    /// corner modelling; see [`Library::scale_delays`]).
    pub fn with_scaled_delays(&self, factor: f64) -> Netlist {
        let mut scaled = self.clone();
        scaled.library = self.library.scale_delays(factor);
        scaled
    }

    /// The characterized library this design is mapped to.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// Number of cell instances (including port pseudo-cells).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Looks up a cell instance.
    #[inline]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Looks up a net.
    #[inline]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Finds a cell by instance name.
    pub fn find_cell(&self, name: &str) -> Option<CellId> {
        self.cell_names.get(name).copied()
    }

    /// Finds a net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId::new(i), c))
    }

    /// Iterates over `(id, net)` pairs.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId::new(i), n))
    }

    /// All timing startpoints: primary inputs and flip-flop outputs.
    pub fn startpoints(&self) -> Vec<CellId> {
        self.cells()
            .filter(|(_, c)| matches!(c.role, CellRole::Input | CellRole::Sequential))
            .map(|(id, _)| id)
            .collect()
    }

    /// All timing endpoints: primary outputs and flip-flop `D` pins
    /// (represented by the flip-flop cell).
    pub fn endpoints(&self) -> Vec<CellId> {
        self.cells()
            .filter(|(_, c)| matches!(c.role, CellRole::Output | CellRole::Sequential))
            .map(|(id, _)| id)
            .collect()
    }

    /// All clock source ports.
    pub fn clock_sources(&self) -> Vec<CellId> {
        self.cells()
            .filter(|(_, c)| c.role == CellRole::ClockSource)
            .map(|(id, _)| id)
            .collect()
    }

    /// Total placed cell area in µm² (ports excluded; they have zero area).
    pub fn total_area(&self) -> f64 {
        self.cells
            .iter()
            .map(|c| self.library.cell(c.lib_cell).area)
            .sum()
    }

    /// Total leakage power in nW.
    pub fn total_leakage(&self) -> f64 {
        self.cells
            .iter()
            .map(|c| self.library.cell(c.lib_cell).leakage)
            .sum()
    }

    /// Number of buffer cells (`BUF_*`) in the data network — the paper's
    /// "buffer inserted" QoR metric counts these.
    pub fn buffer_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| {
                c.role == CellRole::Combinational
                    && self.library.cell(c.lib_cell).function == Function::Buf
            })
            .count()
    }

    /// Total estimated wire length of `net` in µm (star model from the
    /// driver to every sink).
    pub fn net_length(&self, id: NetId) -> f64 {
        let net = self.net(id);
        let Some(driver) = net.driver else {
            return 0.0;
        };
        let from = self.cell(driver).loc;
        net.sinks
            .iter()
            .map(|&(sink, _)| from.manhattan(self.cell(sink).loc))
            .sum()
    }

    /// Estimated wire length from the driver of `net` to one `sink` pin.
    pub fn sink_length(&self, id: NetId, sink: CellId) -> f64 {
        let net = self.net(id);
        match net.driver {
            Some(d) => self.cell(d).loc.manhattan(self.cell(sink).loc),
            None => 0.0,
        }
    }

    /// Estimated wire delay for a run of `length` µm: linear plus
    /// distributed-RC quadratic term.
    pub fn wire_delay(&self, length: f64) -> f64 {
        self.library.wire_delay_per_um * length + self.library.wire_delay_per_um2 * length * length
    }

    /// Total capacitive load on `net` in fF: sink pin caps plus wire cap.
    pub fn net_load(&self, id: NetId) -> f64 {
        let net = self.net(id);
        let pin_cap: f64 = net
            .sinks
            .iter()
            .map(|&(sink, _)| self.library.cell(self.cell(sink).lib_cell).input_cap)
            .sum();
        pin_cap + self.library.wire_cap_per_um * self.net_length(id)
    }

    /// Topological order of all cells under the *timing dependency*
    /// relation: a combinational cell depends on all its input drivers, a
    /// flip-flop depends only on its clock pin driver (its `D` input is an
    /// endpoint, not a dependency).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::CombinationalCycle`] naming a cell on the cycle
    /// if the dependency relation is cyclic.
    pub fn topo_order(&self) -> Result<Vec<CellId>, BuildError> {
        let (order, stuck) = self.kahn();
        if let Some(&first) = stuck.first() {
            return Err(BuildError::CombinationalCycle(
                self.cells[first.index()].name.clone(),
            ));
        }
        Ok(order)
    }

    /// Cells left with positive indegree after the Kahn pass — the
    /// members (and downstream dependents) of combinational cycles, in
    /// id order. Empty when the timing graph is acyclic. This is the
    /// same pass [`Self::topo_order`] runs; the lint engine
    /// ([`crate::lint`]) consumes the full set where the fail-fast path
    /// names only the first.
    pub fn cycle_members(&self) -> Vec<CellId> {
        self.kahn().1
    }

    /// One Kahn pass over the timing dependency graph: returns the topo
    /// order of schedulable cells and the ids still blocked at the end.
    fn kahn(&self) -> (Vec<CellId>, Vec<CellId>) {
        let n = self.cells.len();
        let mut indegree = vec![0u32; n];
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (id, cell) in self.cells() {
            for (pin, net) in cell.inputs.iter().enumerate() {
                if cell.role == CellRole::Sequential && pin != PinIndex::FF_CK.index() {
                    continue; // D pin is not a dependency
                }
                let Some(net) = net else { continue };
                if let Some(driver) = self.net(*net).driver {
                    dependents[driver.index()].push(id.index() as u32);
                    indegree[id.index()] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(CellId::new(u));
            for &v in &dependents[u] {
                indegree[v as usize] -= 1;
                if indegree[v as usize] == 0 {
                    queue.push(v as usize);
                }
            }
        }
        let stuck = (0..n)
            .filter(|&i| indegree[i] > 0)
            .map(CellId::new)
            .collect();
        (order, stuck)
    }

    /// Swaps the library cell implementing `cell` (gate sizing).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::WrongFunction`] if `new_lib` implements a
    /// different logic function than the current cell.
    pub fn set_lib_cell(&mut self, cell: CellId, new_lib: LibCellId) -> Result<(), BuildError> {
        let old = self.cells[cell.index()].lib_cell;
        if self.library.cell(old).function != self.library.cell(new_lib).function {
            return Err(BuildError::WrongFunction {
                lib_cell: self.library.cell(new_lib).name.clone(),
                expected: "the same function as the cell it replaces",
            });
        }
        self.cells[cell.index()].lib_cell = new_lib;
        Ok(())
    }

    /// Inserts a buffer after the driver of `net`, transferring the given
    /// `moved_sinks` (or all sinks if empty) onto a new net driven by the
    /// buffer. Returns the new buffer's id.
    ///
    /// The buffer is placed at the midpoint of the driver and the centroid
    /// of the moved sinks.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownLibCell`] if `buf_lib` is not in the
    /// library, [`BuildError::WrongFunction`] if it is not a buffer, or
    /// [`BuildError::DuplicateName`] if `name` is taken.
    pub fn insert_buffer(
        &mut self,
        net: NetId,
        buf_lib: LibCellId,
        name: &str,
        moved_sinks: &[(CellId, PinIndex)],
    ) -> Result<CellId, BuildError> {
        let lib_cell = self.library.cell(buf_lib);
        if lib_cell.function != Function::Buf {
            return Err(BuildError::WrongFunction {
                lib_cell: lib_cell.name.clone(),
                expected: "a buffer",
            });
        }
        if self.cell_names.contains_key(name) {
            return Err(BuildError::DuplicateName(name.to_owned()));
        }
        let moved: Vec<(CellId, PinIndex)> = if moved_sinks.is_empty() {
            self.nets[net.index()].sinks.clone()
        } else {
            moved_sinks.to_vec()
        };
        // Placement: between the driver and the moved sinks' centroid.
        let driver_loc = self.nets[net.index()]
            .driver
            .map(|d| self.cell(d).loc)
            .unwrap_or(Point::ORIGIN);
        let centroid = if moved.is_empty() {
            driver_loc
        } else {
            let (sx, sy) = moved.iter().fold((0.0, 0.0), |(x, y), &(c, _)| {
                let p = self.cell(c).loc;
                (x + p.x, y + p.y)
            });
            Point::new(sx / moved.len() as f64, sy / moved.len() as f64)
        };
        let loc = driver_loc.midpoint(centroid);

        let buf_id = CellId::new(self.cells.len());
        let mut buf = Cell::new(
            name.to_owned(),
            buf_lib,
            Function::Buf,
            CellRole::Combinational,
            loc,
        );
        let new_net_id = NetId::new(self.nets.len());
        let new_net_name = format!("{name}_out");
        if self.net_names.contains_key(&new_net_name) {
            return Err(BuildError::DuplicateName(new_net_name));
        }
        buf.inputs[0] = Some(net);
        buf.output = Some(new_net_id);
        self.cell_names.insert(name.to_owned(), buf_id);
        self.cells.push(buf);

        // Re-home the moved sinks.
        let old_net = &mut self.nets[net.index()];
        old_net.sinks.retain(|s| !moved.iter().any(|m| m == s));
        old_net.sinks.push((buf_id, PinIndex(0)));
        for &(cell, pin) in &moved {
            self.cells[cell.index()].inputs[pin.index()] = Some(new_net_id);
        }
        self.net_names.insert(new_net_name.clone(), new_net_id);
        self.nets.push(Net {
            name: new_net_name,
            driver: Some(buf_id),
            sinks: moved,
        });
        Ok(buf_id)
    }

    /// Validates all structural invariants; called by
    /// [`NetlistBuilder::build`] and usable after manual mutation.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: unconnected pins, missing
    /// outputs, combinational cycles, net/pin cross-reference mismatches
    /// (reported as [`BuildError::UnconnectedPin`]), or unclocked flip-flops.
    pub fn validate(&self) -> Result<(), BuildError> {
        for (id, cell) in self.cells() {
            let lib = self.library.cell(cell.lib_cell);
            for (pin, net) in cell.inputs.iter().enumerate() {
                let Some(net) = net else {
                    return Err(BuildError::UnconnectedPin {
                        cell: cell.name.clone(),
                        pin,
                    });
                };
                let listed = self
                    .net(*net)
                    .sinks
                    .iter()
                    .any(|&(c, p)| c == id && p.index() == pin);
                if !listed {
                    return Err(BuildError::UnconnectedPin {
                        cell: cell.name.clone(),
                        pin,
                    });
                }
            }
            if lib.function.has_output() && cell.output.is_none() && !cell.inputs.is_empty() {
                // Dangling gate outputs are allowed only for ports; a gate
                // with inputs but no output is dead logic we reject.
                return Err(BuildError::MissingOutput(cell.name.clone()));
            }
            if let Some(out) = cell.output {
                if self.net(out).driver != Some(id) {
                    return Err(BuildError::MissingOutput(cell.name.clone()));
                }
            }
        }
        self.topo_order()?;
        self.check_clocking()
    }

    /// Every flip-flop's CK pin must trace back through clock buffers to a
    /// clock source.
    fn check_clocking(&self) -> Result<(), BuildError> {
        for (_, cell) in self.cells() {
            if cell.role != CellRole::Sequential {
                continue;
            }
            let mut cur = cell.inputs[PinIndex::FF_CK.index()];
            let mut hops = 0usize;
            loop {
                let Some(net) = cur else {
                    return Err(BuildError::UnclockedFlipFlop(cell.name.clone()));
                };
                let Some(driver) = self.net(net).driver else {
                    return Err(BuildError::UnclockedFlipFlop(cell.name.clone()));
                };
                let d = self.cell(driver);
                match d.role {
                    CellRole::ClockSource => break,
                    CellRole::ClockBuffer => {
                        cur = d.inputs[0];
                    }
                    _ => return Err(BuildError::UnclockedFlipFlop(cell.name.clone())),
                }
                hops += 1;
                if hops > self.cells.len() {
                    return Err(BuildError::UnclockedFlipFlop(cell.name.clone()));
                }
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Netlist`].
///
/// See the [crate-level example](crate) for typical usage.
#[derive(Debug)]
pub struct NetlistBuilder {
    inner: Netlist,
}

impl NetlistBuilder {
    /// Starts a new design named `name` mapped to `library`.
    pub fn new(name: impl Into<String>, library: Library) -> Self {
        Self {
            inner: Netlist {
                name: name.into(),
                library,
                cells: Vec::new(),
                nets: Vec::new(),
                cell_names: HashMap::new(),
                net_names: HashMap::new(),
            },
        }
    }

    fn fresh_net(&mut self, name: String, driver: Option<CellId>) -> NetId {
        let id = NetId::new(self.inner.nets.len());
        let unique = if self.inner.net_names.contains_key(&name) {
            format!("{name}_{id}")
        } else {
            name
        };
        self.inner.net_names.insert(unique.clone(), id);
        self.inner.nets.push(Net {
            name: unique,
            driver,
            sinks: Vec::new(),
        });
        id
    }

    fn add_cell(
        &mut self,
        name: &str,
        lib_cell: LibCellId,
        role: CellRole,
        loc: Point,
    ) -> Result<CellId, BuildError> {
        if self.inner.cell_names.contains_key(name) {
            return Err(BuildError::DuplicateName(name.to_owned()));
        }
        let function = self.inner.library.cell(lib_cell).function;
        let id = CellId::new(self.inner.cells.len());
        let mut cell = Cell::new(name.to_owned(), lib_cell, function, role, loc);
        if function.has_output() {
            let out = self.fresh_net(format!("{name}_out"), Some(id));
            cell.output = Some(out);
        }
        self.inner.cell_names.insert(name.to_owned(), id);
        self.inner.cells.push(cell);
        Ok(id)
    }

    fn connect(&mut self, net: NetId, cell: CellId, pin: PinIndex) {
        self.inner.cells[cell.index()].inputs[pin.index()] = Some(net);
        self.inner.nets[net.index()].sinks.push((cell, pin));
    }

    /// Adds a primary input port and returns the net it drives.
    ///
    /// # Panics
    ///
    /// Panics if the library is missing the `IN_PORT` pseudo-cell.
    pub fn add_input(&mut self, name: &str, loc: Point) -> NetId {
        let lib = self
            .inner
            .library
            .find("IN_PORT")
            .expect("library must characterize IN_PORT");
        let id = self
            .add_cell(name, lib, CellRole::Input, loc)
            .unwrap_or_else(|e| panic!("{e}"));
        self.inner.cells[id.index()]
            .output
            .expect("port drives a net")
    }

    /// Adds a clock source port and returns the clock net it drives.
    ///
    /// # Panics
    ///
    /// Panics if the library is missing the `IN_PORT` pseudo-cell.
    pub fn add_clock_port(&mut self, name: &str, loc: Point) -> NetId {
        let lib = self
            .inner
            .library
            .find("IN_PORT")
            .expect("library must characterize IN_PORT");
        let id = self
            .add_cell(name, lib, CellRole::ClockSource, loc)
            .unwrap_or_else(|e| panic!("{e}"));
        self.inner.cells[id.index()]
            .output
            .expect("port drives a net")
    }

    /// Adds a primary output port fed by `net`.
    ///
    /// # Errors
    ///
    /// Returns an error if `name` is taken.
    pub fn add_output(&mut self, name: &str, loc: Point, net: NetId) -> Result<CellId, BuildError> {
        let lib = self
            .inner
            .library
            .find("OUT_PORT")
            .expect("library must characterize OUT_PORT");
        let id = self.add_cell(name, lib, CellRole::Output, loc)?;
        self.connect(net, id, PinIndex(0));
        Ok(id)
    }

    /// Adds a combinational gate (or clock buffer) and connects its inputs.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown/duplicate names, non-combinational
    /// library cells, or arity mismatch.
    pub fn add_gate(
        &mut self,
        name: &str,
        lib_cell: &str,
        loc: Point,
        inputs: &[NetId],
    ) -> Result<CellId, BuildError> {
        let lib = self
            .inner
            .library
            .find(lib_cell)
            .ok_or_else(|| BuildError::UnknownLibCell(lib_cell.to_owned()))?;
        let function = self.inner.library.cell(lib).function;
        if !function.is_combinational() {
            return Err(BuildError::WrongFunction {
                lib_cell: lib_cell.to_owned(),
                expected: "combinational",
            });
        }
        if function.arity() != inputs.len() {
            return Err(BuildError::ArityMismatch {
                cell: name.to_owned(),
                expected: function.arity(),
                got: inputs.len(),
            });
        }
        let role = if function == Function::ClkBuf {
            CellRole::ClockBuffer
        } else {
            CellRole::Combinational
        };
        let id = self.add_cell(name, lib, role, loc)?;
        for (pin, &net) in inputs.iter().enumerate() {
            self.connect(net, id, PinIndex(pin as u8));
        }
        Ok(id)
    }

    /// Adds a combinational gate with all input pins left open, to be
    /// wired later with [`NetlistBuilder::connect_input_pin`] (used by
    /// netlist readers, where an instance may reference nets whose
    /// drivers appear later in the file).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown/duplicate names or non-combinational
    /// library cells.
    pub fn add_gate_unwired(
        &mut self,
        name: &str,
        lib_cell: &str,
        loc: Point,
    ) -> Result<CellId, BuildError> {
        let lib = self
            .inner
            .library
            .find(lib_cell)
            .ok_or_else(|| BuildError::UnknownLibCell(lib_cell.to_owned()))?;
        let function = self.inner.library.cell(lib).function;
        if !function.is_combinational() {
            return Err(BuildError::WrongFunction {
                lib_cell: lib_cell.to_owned(),
                expected: "combinational",
            });
        }
        let role = if function == Function::ClkBuf {
            CellRole::ClockBuffer
        } else {
            CellRole::Combinational
        };
        self.add_cell(name, lib, role, loc)
    }

    /// Connects `net` to the given input pin of `cell` (companion to
    /// [`NetlistBuilder::add_gate_unwired`]).
    ///
    /// # Panics
    ///
    /// Panics if the pin index exceeds the cell's arity.
    pub fn connect_input_pin(&mut self, cell: CellId, pin: PinIndex, net: NetId) {
        assert!(
            pin.index() < self.inner.cells[cell.index()].inputs.len(),
            "pin {pin} out of range"
        );
        self.connect(net, cell, pin);
    }

    /// Adds a flip-flop with its clock pin tied to `clk`. The `D` pin is
    /// left open; connect it with [`NetlistBuilder::connect_flip_flop_d`].
    ///
    /// # Errors
    ///
    /// Returns an error for unknown/duplicate names or if `lib_cell` is not
    /// a flip-flop.
    pub fn add_flip_flop(
        &mut self,
        name: &str,
        lib_cell: &str,
        loc: Point,
        clk: NetId,
    ) -> Result<CellId, BuildError> {
        let lib = self
            .inner
            .library
            .find(lib_cell)
            .ok_or_else(|| BuildError::UnknownLibCell(lib_cell.to_owned()))?;
        if self.inner.library.cell(lib).function != Function::Dff {
            return Err(BuildError::WrongFunction {
                lib_cell: lib_cell.to_owned(),
                expected: "a flip-flop",
            });
        }
        let id = self.add_cell(name, lib, CellRole::Sequential, loc)?;
        self.connect(clk, id, PinIndex::FF_CK);
        Ok(id)
    }

    /// Adds a flip-flop with both `D` and `CK` pins left open, to be
    /// wired later with [`NetlistBuilder::connect_input_pin`] (used by
    /// netlist readers that replay connections in source order, where a
    /// flip-flop may appear before its clock driver).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown/duplicate names or if `lib_cell` is not
    /// a flip-flop.
    pub fn add_flip_flop_unwired(
        &mut self,
        name: &str,
        lib_cell: &str,
        loc: Point,
    ) -> Result<CellId, BuildError> {
        let lib = self
            .inner
            .library
            .find(lib_cell)
            .ok_or_else(|| BuildError::UnknownLibCell(lib_cell.to_owned()))?;
        if self.inner.library.cell(lib).function != Function::Dff {
            return Err(BuildError::WrongFunction {
                lib_cell: lib_cell.to_owned(),
                expected: "a flip-flop",
            });
        }
        self.add_cell(name, lib, CellRole::Sequential, loc)
    }

    /// Connects `driver`'s output net to the `D` pin of flip-flop `ff`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::MissingOutput`] if `driver` drives no net.
    pub fn connect_flip_flop_d(&mut self, ff: CellId, driver: CellId) -> Result<(), BuildError> {
        let net = self.inner.cells[driver.index()].output.ok_or_else(|| {
            BuildError::MissingOutput(self.inner.cells[driver.index()].name.clone())
        })?;
        self.connect(net, ff, PinIndex::FF_D);
        Ok(())
    }

    /// Connects an arbitrary `net` to the `D` pin of flip-flop `ff`.
    pub fn connect_flip_flop_d_net(&mut self, ff: CellId, net: NetId) {
        self.connect(net, ff, PinIndex::FF_D);
    }

    /// Placement location of the cell driving `net`, if any.
    pub fn net_driver_location(&self, net: NetId) -> Option<Point> {
        self.inner.nets[net.index()]
            .driver
            .map(|d| self.inner.cells[d.index()].loc)
    }

    /// The net driven by `cell`'s output pin.
    ///
    /// # Panics
    ///
    /// Panics if the cell has no output (primary outputs).
    pub fn cell_output(&self, cell: CellId) -> NetId {
        self.inner.cells[cell.index()]
            .output
            .expect("cell has no output pin")
    }

    /// Number of cells added so far.
    pub fn num_cells(&self) -> usize {
        self.inner.cells.len()
    }

    /// Validates and finalizes the netlist.
    ///
    /// # Errors
    ///
    /// Any [`BuildError`] found by [`Netlist::validate`].
    pub fn build(self) -> Result<Netlist, BuildError> {
        self.inner.validate()?;
        Ok(self.inner)
    }

    /// Finalizes without validation (for intentionally-partial test fixtures).
    pub fn build_unchecked(self) -> Netlist {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::DriveStrength;

    fn tiny() -> Netlist {
        // clk ─▶ ff0 ─▶ inv ─▶ nand ─▶ ff1 ; in0 ─▶ nand
        let mut b = NetlistBuilder::new("tiny", Library::standard());
        let clk = b.add_clock_port("clk", Point::new(0.0, 0.0));
        let in0 = b.add_input("in0", Point::new(0.0, 20.0));
        let d0 = b.add_input("d0", Point::new(0.0, 0.0));
        let ff0 = b
            .add_flip_flop("ff0", "DFF_X1", Point::new(10.0, 0.0), clk)
            .unwrap();
        b.connect_flip_flop_d_net(ff0, d0);
        let inv = b
            .add_gate(
                "u_inv",
                "INV_X1",
                Point::new(20.0, 5.0),
                &[b.cell_output(ff0)],
            )
            .unwrap();
        let nand = b
            .add_gate(
                "u_nand",
                "NAND2_X1",
                Point::new(30.0, 10.0),
                &[b.cell_output(inv), in0],
            )
            .unwrap();
        let ff1 = b
            .add_flip_flop("ff1", "DFF_X1", Point::new(40.0, 10.0), clk)
            .unwrap();
        b.connect_flip_flop_d(ff1, nand).unwrap();
        let y = b.cell_output(ff1);
        b.add_output("y", Point::new(50.0, 10.0), y).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn tiny_design_builds_and_validates() {
        let n = tiny();
        assert_eq!(n.num_cells(), 8);
        assert_eq!(n.startpoints().len(), 4); // in0, d0 + 2 FFs
        assert_eq!(n.endpoints().len(), 3); // y + 2 FFs
        assert_eq!(n.clock_sources().len(), 1);
        assert!(n.total_area() > 0.0);
        assert!(n.total_leakage() > 0.0);
        assert_eq!(n.buffer_count(), 0);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let n = tiny();
        let order = n.topo_order().unwrap();
        assert_eq!(order.len(), n.num_cells());
        let pos: HashMap<CellId, usize> = order.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let ff0 = n.find_cell("ff0").unwrap();
        let inv = n.find_cell("u_inv").unwrap();
        let nand = n.find_cell("u_nand").unwrap();
        let clk = n.find_cell("clk").unwrap();
        assert!(pos[&clk] < pos[&ff0]);
        assert!(pos[&ff0] < pos[&inv]);
        assert!(pos[&inv] < pos[&nand]);
    }

    #[test]
    fn ff_d_input_is_not_a_dependency() {
        // ff1's D comes from nand, but ff1 may be ordered before nand.
        let n = tiny();
        assert!(n.topo_order().is_ok());
    }

    #[test]
    fn net_load_and_length() {
        let n = tiny();
        let inv = n.find_cell("u_inv").unwrap();
        let out = n.cell(inv).output.unwrap();
        let len = n.net_length(out);
        // inv at (20,5) → nand at (30,10): manhattan 15
        assert!((len - 15.0).abs() < 1e-9);
        let load = n.net_load(out);
        let nand_cap = n
            .library()
            .cell(
                n.library()
                    .variant(Function::Nand2, DriveStrength::X1)
                    .unwrap(),
            )
            .input_cap;
        assert!((load - (nand_cap + n.library().wire_cap_per_um * 15.0)).abs() < 1e-9);
    }

    #[test]
    fn sizing_swaps_variant() {
        let mut n = tiny();
        let inv = n.find_cell("u_inv").unwrap();
        let x4 = n
            .library()
            .variant(Function::Inv, DriveStrength::X4)
            .unwrap();
        n.set_lib_cell(inv, x4).unwrap();
        assert_eq!(n.cell(inv).lib_cell, x4);
        // Swapping to a different function is rejected.
        let buf = n
            .library()
            .variant(Function::Buf, DriveStrength::X1)
            .unwrap();
        assert!(n.set_lib_cell(inv, buf).is_err());
        n.validate().unwrap();
    }

    #[test]
    fn buffer_insertion_splits_net() {
        let mut n = tiny();
        let inv = n.find_cell("u_inv").unwrap();
        let out = n.cell(inv).output.unwrap();
        let buf_lib = n
            .library()
            .variant(Function::Buf, DriveStrength::X2)
            .unwrap();
        let before_sinks = n.net(out).sinks.clone();
        let buf = n.insert_buffer(out, buf_lib, "rbuf0", &[]).unwrap();
        // Old net now drives only the buffer.
        assert_eq!(n.net(out).sinks, vec![(buf, PinIndex(0))]);
        // New net drives the original sinks.
        let new_net = n.cell(buf).output.unwrap();
        assert_eq!(n.net(new_net).sinks, before_sinks);
        n.validate().unwrap();
        assert_eq!(n.buffer_count(), 1);
        assert!(n.topo_order().is_ok());
    }

    #[test]
    fn buffer_insertion_rejects_non_buffer() {
        let mut n = tiny();
        let inv = n.find_cell("u_inv").unwrap();
        let out = n.cell(inv).output.unwrap();
        let inv_lib = n
            .library()
            .variant(Function::Inv, DriveStrength::X1)
            .unwrap();
        assert!(matches!(
            n.insert_buffer(out, inv_lib, "b", &[]),
            Err(BuildError::WrongFunction { .. })
        ));
    }

    #[test]
    fn duplicate_cell_name_rejected() {
        let mut b = NetlistBuilder::new("dup", Library::standard());
        let clk = b.add_clock_port("clk", Point::ORIGIN);
        let _ff = b.add_flip_flop("ff", "DFF_X1", Point::ORIGIN, clk).unwrap();
        assert!(matches!(
            b.add_flip_flop("ff", "DFF_X1", Point::ORIGIN, clk),
            Err(BuildError::DuplicateName(_))
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = NetlistBuilder::new("bad", Library::standard());
        let a = b.add_input("a", Point::ORIGIN);
        assert!(matches!(
            b.add_gate("g", "NAND2_X1", Point::ORIGIN, &[a]),
            Err(BuildError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn unknown_lib_cell_rejected() {
        let mut b = NetlistBuilder::new("bad", Library::standard());
        let a = b.add_input("a", Point::ORIGIN);
        assert!(matches!(
            b.add_gate("g", "NAND99_X1", Point::ORIGIN, &[a]),
            Err(BuildError::UnknownLibCell(_))
        ));
    }

    #[test]
    fn unclocked_ff_rejected() {
        let mut b = NetlistBuilder::new("bad", Library::standard());
        let data = b.add_input("d", Point::ORIGIN);
        // Clock pin tied to a data input, not a clock source.
        let ff = b
            .add_flip_flop("ff", "DFF_X1", Point::ORIGIN, data)
            .unwrap();
        let q = b.cell_output(ff);
        b.add_output("y", Point::ORIGIN, q).unwrap();
        b.connect_flip_flop_d_net(ff, data);
        assert!(matches!(b.build(), Err(BuildError::UnclockedFlipFlop(_))));
    }

    #[test]
    fn combinational_cycle_rejected() {
        let mut b = NetlistBuilder::new("loop", Library::standard());
        let a = b.add_input("a", Point::ORIGIN);
        // g0 and g1 feed each other.
        let g0 = b.add_gate("g0", "INV_X1", Point::ORIGIN, &[a]).unwrap();
        let g1 = b
            .add_gate("g1", "NAND2_X1", Point::ORIGIN, &[b.cell_output(g0), a])
            .unwrap();
        // Rewire g0's input to g1's output to close the loop.
        let mut n = b.build_unchecked();
        let g1_out = n.cell(g1).output.unwrap();
        n.cells[g0.index()].inputs[0] = Some(g1_out);
        n.nets[g1_out.index()].sinks.push((g0, PinIndex(0)));
        assert!(matches!(
            n.topo_order(),
            Err(BuildError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn clock_through_clkbuf_is_valid() {
        let mut b = NetlistBuilder::new("ct", Library::standard());
        let clk = b.add_clock_port("clk", Point::ORIGIN);
        let cb = b
            .add_gate("cb0", "CLKBUF_X4", Point::new(5.0, 0.0), &[clk])
            .unwrap();
        let ff = b
            .add_flip_flop("ff", "DFF_X1", Point::new(10.0, 0.0), b.cell_output(cb))
            .unwrap();
        let d = b.add_input("d", Point::ORIGIN);
        b.connect_flip_flop_d_net(ff, d);
        let q = b.cell_output(ff);
        b.add_output("y", Point::new(20.0, 0.0), q).unwrap();
        let n = b.build().unwrap();
        assert_eq!(
            n.cell(n.find_cell("cb0").unwrap()).role,
            CellRole::ClockBuffer
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = BuildError::ArityMismatch {
            cell: "u1".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("u1"));
        assert!(BuildError::UnknownLibCell("Z".into())
            .to_string()
            .contains('Z'));
    }
}
