//! Gate-level netlist substrate for the mGBA pessimism-reduction framework.
//!
//! This crate models everything the timing engine ([`sta`]) needs from a
//! physical design:
//!
//! - a characterized **cell library** ([`Library`]) with per-drive-strength
//!   delay, slew, area, and leakage data in the spirit of a Liberty file;
//! - a **netlist** ([`Netlist`]) of cell instances connected by nets, with
//!   placement locations so distance-based AOCV derating is meaningful;
//! - a seeded **synthetic design generator** ([`generate`]) standing in for
//!   the proprietary industrial designs D1–D10 of the paper;
//! - a plain-text interchange **format** ([`format`](mod@format)) for persisting and
//!   inspecting designs.
//!
//! # Example
//!
//! ```
//! use netlist::{Library, NetlistBuilder, Function, Point};
//!
//! # fn main() -> Result<(), netlist::BuildError> {
//! let lib = Library::standard();
//! let mut b = NetlistBuilder::new("adder_bit", lib);
//! let clk = b.add_clock_port("clk", Point::new(0.0, 0.0));
//! let a = b.add_input("a", Point::new(0.0, 10.0));
//! let ff = b.add_flip_flop("ff0", "DFF_X1", Point::new(30.0, 10.0), clk)?;
//! let inv = b.add_gate("u0", "INV_X1", Point::new(15.0, 10.0), &[a])?;
//! b.connect_flip_flop_d(ff, inv)?;
//! let q = b.cell_output(ff);
//! let out = b.add_output("y", Point::new(60.0, 10.0), q)?;
//! # let _ = out;
//! let design = b.build()?;
//! assert_eq!(design.num_cells(), 5);
//! # Ok(())
//! # }
//! ```
//!
//! [`sta`]: https://docs.rs/sta

pub mod cell;
pub mod format;
pub mod generate;
pub mod ids;
pub mod liberty;
pub mod library;
pub mod lint;
pub mod netlist;
pub mod point;
pub mod stats;
pub mod verilog;

pub use cell::{Cell, CellRole};
pub use format::{lint_netlist_text, parse_netlist, write_netlist, ParseNetlistError};
pub use generate::{DesignSpec, GeneratorConfig};
pub use ids::{CellId, LibCellId, NetId, PinIndex};
pub use liberty::{parse_liberty, write_liberty, ParseLibertyError};
pub use library::{DriveStrength, Function, LibCell, Library};
pub use lint::{
    lint_netlist, lint_netlist_spanned, LintIssue, LintReport, Severity, SourceMap, SrcSpan,
};
pub use netlist::{BuildError, Net, Netlist, NetlistBuilder};
pub use point::Point;
pub use stats::DesignStats;
pub use verilog::{parse_verilog, write_verilog, ParseVerilogError};
