//! Gate-level structural Verilog interchange (subset).
//!
//! Reads and writes the structural-Verilog dialect that gate-level
//! netlists are shipped in, restricted to what this library models:
//!
//! ```verilog
//! module top (clk, d0, y);
//!   input clk;
//!   input d0;
//!   output y;
//!   wire n1, n2;
//!   (* loc = "12.5,40.0" *)
//!   DFF_X1 ff0 (.D(d0), .CK(clk), .Q(n1));
//!   INV_X2 u0 (.A(n1), .Y(n2));
//!   BUF_X1 u1 (.A(n2), .Y(y));
//! endmodule
//! ```
//!
//! - Cell types must exist in [`Library::standard`] (`std45`).
//! - Pin names follow the library convention: data inputs `A`, `B`, `C`
//!   in order; output `Y`; flip-flops use `D`, `CK`, `Q`.
//! - Placement rides on the non-standard but tool-conventional
//!   `(* loc = "x,y" *)` attribute; instances without one sit at the
//!   origin.
//! - A module input that only ever drives `CK` pins becomes a clock
//!   source port; all other inputs are data ports.
//!
//! The writer emits exactly this dialect, so designs round-trip.

use crate::cell::CellRole;
use crate::ids::PinIndex;
use crate::library::{Function, Library};
use crate::netlist::{Netlist, NetlistBuilder};
use crate::point::Point;
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Errors from [`parse_verilog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseVerilogError {
    /// Lexical or syntactic problem, with a human description.
    Syntax(String),
    /// A referenced cell type is not in the standard library.
    UnknownCellType(String),
    /// A pin name is not valid for the cell's function.
    UnknownPin {
        /// Cell type.
        cell_type: String,
        /// Offending pin.
        pin: String,
    },
    /// An identifier (net or port) was used but never declared.
    UndeclaredNet(String),
    /// The reconstructed netlist failed structural validation.
    Invalid(String),
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseVerilogError::Syntax(m) => write!(f, "syntax error: {m}"),
            ParseVerilogError::UnknownCellType(t) => write!(f, "unknown cell type `{t}`"),
            ParseVerilogError::UnknownPin { cell_type, pin } => {
                write!(f, "cell type `{cell_type}` has no pin `{pin}`")
            }
            ParseVerilogError::UndeclaredNet(n) => write!(f, "undeclared net `{n}`"),
            ParseVerilogError::Invalid(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl Error for ParseVerilogError {}

/// Data-input pin names for a function, in pin-index order (the shared
/// interchange convention lives on [`Function`]).
fn input_pin_names(function: Function) -> &'static [&'static str] {
    function.input_pin_names()
}

/// Output pin name for a function.
fn output_pin_name(function: Function) -> &'static str {
    function.output_pin_name()
}

// ----------------------------------------------------------------------
// Lexer
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Sym(char),
    AttrOpen,  // (*
    AttrClose, // *)
}

fn lex(src: &str) -> Result<Vec<Tok>, ParseVerilogError> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' if bytes.get(i + 1) == Some(&'*') => {
                toks.push(Tok::AttrOpen);
                i += 2;
            }
            '*' if bytes.get(i + 1) == Some(&')') => {
                toks.push(Tok::AttrClose);
                i += 2;
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseVerilogError::Syntax(
                        "unterminated string literal".to_owned(),
                    ));
                }
                toks.push(Tok::Str(bytes[start..j].iter().collect()));
                i = j + 1;
            }
            '(' | ')' | ';' | ',' | '.' | '=' => {
                toks.push(Tok::Sym(c));
                i += 1;
            }
            c if c.is_alphanumeric() || c == '_' || c == '\\' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_alphanumeric() || bytes[j] == '_' || bytes[j] == '\\')
                {
                    j += 1;
                }
                toks.push(Tok::Ident(bytes[start..j].iter().collect()));
                i = j;
            }
            other => {
                return Err(ParseVerilogError::Syntax(format!(
                    "unexpected character `{other}`"
                )))
            }
        }
    }
    Ok(toks)
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok, ParseVerilogError> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| ParseVerilogError::Syntax("unexpected end of file".to_owned()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_sym(&mut self, c: char) -> Result<(), ParseVerilogError> {
        match self.next()? {
            Tok::Sym(s) if s == c => Ok(()),
            other => Err(ParseVerilogError::Syntax(format!(
                "expected `{c}`, found {other:?}"
            ))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseVerilogError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseVerilogError::Syntax(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseVerilogError> {
        let id = self.expect_ident()?;
        if id == kw {
            Ok(())
        } else {
            Err(ParseVerilogError::Syntax(format!(
                "expected `{kw}`, found `{id}`"
            )))
        }
    }

    /// Parses a comma-separated identifier list terminated by `;`.
    fn ident_list(&mut self) -> Result<Vec<String>, ParseVerilogError> {
        let mut out = vec![self.expect_ident()?];
        loop {
            match self.next()? {
                Tok::Sym(',') => out.push(self.expect_ident()?),
                Tok::Sym(';') => break,
                other => {
                    return Err(ParseVerilogError::Syntax(format!(
                        "expected `,` or `;`, found {other:?}"
                    )))
                }
            }
        }
        Ok(out)
    }
}

/// One parsed instance before elaboration.
struct RawInstance {
    cell_type: String,
    name: String,
    loc: Point,
    /// pin name → net name.
    connections: Vec<(String, String)>,
}

/// Parses a structural Verilog module into a [`Netlist`] mapped to the
/// standard library.
///
/// # Errors
///
/// Returns [`ParseVerilogError`] on any lexical, syntactic, or semantic
/// problem, or if the resulting netlist fails validation.
pub fn parse_verilog(src: &str) -> Result<Netlist, ParseVerilogError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };

    p.expect_keyword("module")?;
    let module_name = p.expect_ident()?;
    // Port list: `(a, b, c);` — directions come from the declarations.
    p.expect_sym('(')?;
    let mut port_order = Vec::new();
    if p.peek() != Some(&Tok::Sym(')')) {
        loop {
            port_order.push(p.expect_ident()?);
            match p.next()? {
                Tok::Sym(',') => continue,
                Tok::Sym(')') => break,
                other => {
                    return Err(ParseVerilogError::Syntax(format!(
                        "expected `,` or `)` in port list, found {other:?}"
                    )))
                }
            }
        }
    } else {
        p.expect_sym(')')?;
    }
    p.expect_sym(';')?;

    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut wires: HashSet<String> = HashSet::new();
    let mut instances: Vec<RawInstance> = Vec::new();
    let mut port_loc: HashMap<String, Point> = HashMap::new();
    let mut pending_loc = Point::ORIGIN;

    loop {
        match p.peek() {
            Some(Tok::AttrOpen) => {
                // (* loc = "x,y" *)
                p.next()?;
                p.expect_keyword("loc")?;
                p.expect_sym('=')?;
                let s = match p.next()? {
                    Tok::Str(s) => s,
                    other => {
                        return Err(ParseVerilogError::Syntax(format!(
                            "expected string after loc =, found {other:?}"
                        )))
                    }
                };
                match p.next()? {
                    Tok::AttrClose => {}
                    other => {
                        return Err(ParseVerilogError::Syntax(format!(
                            "expected `*)`, found {other:?}"
                        )))
                    }
                }
                let (x, y) = s
                    .split_once(',')
                    .ok_or_else(|| ParseVerilogError::Syntax(format!("bad loc `{s}`")))?;
                // Reject non-finite coordinates: NaN/inf placements
                // would poison wire lengths and every derived slack.
                let x: f64 = x
                    .trim()
                    .parse()
                    .ok()
                    .filter(|v: &f64| v.is_finite())
                    .ok_or_else(|| {
                        ParseVerilogError::Syntax(format!("bad x coordinate in loc `{s}`"))
                    })?;
                let y: f64 = y
                    .trim()
                    .parse()
                    .ok()
                    .filter(|v: &f64| v.is_finite())
                    .ok_or_else(|| {
                        ParseVerilogError::Syntax(format!("bad y coordinate in loc `{s}`"))
                    })?;
                pending_loc = Point::new(x, y);
            }
            Some(Tok::Ident(kw)) if kw == "input" => {
                p.next()?;
                let names = p.ident_list()?;
                for n in &names {
                    port_loc.insert(n.clone(), pending_loc);
                }
                pending_loc = Point::ORIGIN;
                inputs.extend(names);
            }
            Some(Tok::Ident(kw)) if kw == "output" => {
                p.next()?;
                let names = p.ident_list()?;
                for n in &names {
                    port_loc.insert(n.clone(), pending_loc);
                }
                pending_loc = Point::ORIGIN;
                outputs.extend(names);
            }
            Some(Tok::Ident(kw)) if kw == "wire" => {
                p.next()?;
                wires.extend(p.ident_list()?);
            }
            Some(Tok::Ident(kw)) if kw == "endmodule" => {
                p.next()?;
                break;
            }
            Some(Tok::Ident(_)) => {
                // Instance: CELLTYPE name ( .PIN(net), ... );
                let cell_type = p.expect_ident()?;
                let name = p.expect_ident()?;
                p.expect_sym('(')?;
                let mut connections = Vec::new();
                if p.peek() != Some(&Tok::Sym(')')) {
                    loop {
                        p.expect_sym('.')?;
                        let pin = p.expect_ident()?;
                        p.expect_sym('(')?;
                        let net = p.expect_ident()?;
                        p.expect_sym(')')?;
                        connections.push((pin, net));
                        match p.next()? {
                            Tok::Sym(',') => continue,
                            Tok::Sym(')') => break,
                            other => {
                                return Err(ParseVerilogError::Syntax(format!(
                                    "expected `,` or `)`, found {other:?}"
                                )))
                            }
                        }
                    }
                } else {
                    p.expect_sym(')')?;
                }
                p.expect_sym(';')?;
                instances.push(RawInstance {
                    cell_type,
                    name,
                    loc: pending_loc,
                    connections,
                });
                pending_loc = Point::ORIGIN;
            }
            None => return Err(ParseVerilogError::Syntax("missing `endmodule`".to_owned())),
            Some(other) => {
                return Err(ParseVerilogError::Syntax(format!(
                    "unexpected token {other:?}"
                )))
            }
        }
    }

    elaborate(module_name, inputs, outputs, wires, instances, &port_loc)
}

/// Builds the netlist from parsed declarations.
fn elaborate(
    module_name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    wires: HashSet<String>,
    instances: Vec<RawInstance>,
    port_loc: &HashMap<String, Point>,
) -> Result<Netlist, ParseVerilogError> {
    let library = Library::standard();

    // Classify clock nets: anything on a CK pin, traced backward through
    // clock buffers (a CLKBUF whose output is a clock net makes its input
    // a clock net too). An input port whose net is in the closure is a
    // clock source.
    let mut clock_nets: HashSet<String> = HashSet::new();
    for inst in &instances {
        for (pin, net) in &inst.connections {
            if pin == "CK" {
                clock_nets.insert(net.clone());
            }
        }
    }
    loop {
        let mut grew = false;
        for inst in &instances {
            if !inst.cell_type.starts_with("CLKBUF") {
                continue;
            }
            let drives_clock = inst
                .connections
                .iter()
                .any(|(pin, net)| pin == "Y" && clock_nets.contains(net));
            if drives_clock {
                for (pin, net) in &inst.connections {
                    if pin == "A" && clock_nets.insert(net.clone()) {
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }

    let mut b = NetlistBuilder::new(module_name, library.clone());
    let mut net_of: HashMap<String, crate::ids::NetId> = HashMap::new();

    // Ports first (placement comes from instances; ports sit at origin).
    for name in &inputs {
        let loc = port_loc.get(name).copied().unwrap_or(Point::ORIGIN);
        let is_clock = clock_nets.contains(name.as_str());
        let net = if is_clock {
            b.add_clock_port(name, loc)
        } else {
            b.add_input(name, loc)
        };
        net_of.insert(name.clone(), net);
    }

    // Instances: first pass creates cells and registers their output
    // nets; the second pass wires inputs (nets may be driven by a later
    // instance).
    struct Planned {
        cell: crate::ids::CellId,
        function: Function,
        inputs: Vec<(usize, String)>, // pin index → net name
    }
    let mut planned: Vec<Planned> = Vec::new();
    for inst in &instances {
        let lib_id = library
            .find(&inst.cell_type)
            .ok_or_else(|| ParseVerilogError::UnknownCellType(inst.cell_type.clone()))?;
        let function = library.cell(lib_id).function;
        let pin_names = input_pin_names(function);
        let out_name = output_pin_name(function);
        let mut input_conns: Vec<(usize, String)> = Vec::new();
        let mut output_net: Option<String> = None;
        for (pin, net) in &inst.connections {
            if pin == out_name {
                output_net = Some(net.clone());
            } else if let Some(idx) = pin_names.iter().position(|p| p == pin) {
                input_conns.push((idx, net.clone()));
            } else {
                return Err(ParseVerilogError::UnknownPin {
                    cell_type: inst.cell_type.clone(),
                    pin: pin.clone(),
                });
            }
        }
        // Create the cell with dummy inputs, then fix up in pass 2. The
        // builder needs nets at creation time for gates, so we create
        // flip-flops and gates through the lower-level path: temporarily
        // connect gates later via the builder's wiring helpers.
        let cell = match function {
            Function::Dff => {
                // Clock net must exist (a port or an already-made wire).
                let ck = input_conns
                    .iter()
                    .find(|(i, _)| *i == PinIndex::FF_CK.index())
                    .map(|(_, n)| n.clone())
                    .ok_or_else(|| {
                        ParseVerilogError::Syntax(format!("{}: flip-flop without CK", inst.name))
                    })?;
                let ck_net = *net_of
                    .get(&ck)
                    .ok_or(ParseVerilogError::UndeclaredNet(ck.clone()))?;
                b.add_flip_flop(&inst.name, &inst.cell_type, inst.loc, ck_net)
                    .map_err(|e| ParseVerilogError::Invalid(e.to_string()))?
            }
            f if f.is_combinational() => b
                .add_gate_unwired(&inst.name, &inst.cell_type, inst.loc)
                .map_err(|e| ParseVerilogError::Invalid(e.to_string()))?,
            other => {
                return Err(ParseVerilogError::Syntax(format!(
                    "cell type `{}` ({other}) cannot be instantiated",
                    inst.cell_type
                )))
            }
        };
        if let Some(out) = output_net {
            let net = b.cell_output(cell);
            if wires.contains(&out) || outputs.contains(&out) {
                net_of.insert(out, net);
            } else {
                return Err(ParseVerilogError::UndeclaredNet(out));
            }
        }
        planned.push(Planned {
            cell,
            function,
            inputs: input_conns,
        });
    }

    // Second pass: wire every input pin.
    for plan in &planned {
        for (pin_idx, net_name) in &plan.inputs {
            if plan.function == Function::Dff && *pin_idx == PinIndex::FF_CK.index() {
                continue; // already wired at creation
            }
            let net = *net_of
                .get(net_name)
                .ok_or_else(|| ParseVerilogError::UndeclaredNet(net_name.clone()))?;
            b.connect_input_pin(plan.cell, PinIndex(*pin_idx as u8), net);
        }
    }

    // Output ports.
    for name in &outputs {
        let net = *net_of
            .get(name)
            .ok_or_else(|| ParseVerilogError::UndeclaredNet(name.clone()))?;
        let loc = port_loc.get(name).copied().unwrap_or(Point::ORIGIN);
        b.add_output(&format!("{name}__port"), loc, net)
            .map_err(|e| ParseVerilogError::Invalid(e.to_string()))?;
    }

    b.build()
        .map_err(|e| ParseVerilogError::Invalid(e.to_string()))
}

/// Serializes `netlist` as structural Verilog in the dialect
/// [`parse_verilog`] reads.
pub fn write_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let nl = netlist;
    // Ports: inputs (incl. clocks) and outputs.
    let mut port_names = Vec::new();
    for (_, cell) in nl.cells() {
        match cell.role {
            CellRole::Input | CellRole::ClockSource => port_names.push(cell.name.clone()),
            CellRole::Output => port_names.push(format!("{}_net", cell.name)),
            _ => {}
        }
    }
    let _ = writeln!(out, "module {} ({});", nl.name(), port_names.join(", "));
    for (_, cell) in nl.cells() {
        match cell.role {
            CellRole::Input | CellRole::ClockSource => {
                let _ = writeln!(out, "  (* loc = \"{},{}\" *)", cell.loc.x, cell.loc.y);
                let _ = writeln!(out, "  input {};", cell.name);
            }
            CellRole::Output => {
                let _ = writeln!(out, "  (* loc = \"{},{}\" *)", cell.loc.x, cell.loc.y);
                let _ = writeln!(out, "  output {}_net;", cell.name);
            }
            _ => {}
        }
    }
    // Wires: every net not directly a port net. Port cells drive nets
    // named after themselves; output ports consume a net we alias.
    let mut net_name: HashMap<crate::ids::NetId, String> = HashMap::new();
    for (id, net) in nl.nets() {
        let driver_role = net.driver.map(|d| nl.cell(d).role);
        let name = match driver_role {
            Some(CellRole::Input) | Some(CellRole::ClockSource) => {
                nl.cell(net.driver.expect("checked")).name.clone()
            }
            _ => {
                // If this net feeds an output port, use the port net name.
                let port_sink = net
                    .sinks
                    .iter()
                    .find(|(c, _)| nl.cell(*c).role == CellRole::Output);
                match port_sink {
                    Some((c, _)) => format!("{}_net", nl.cell(*c).name),
                    None => format!("w_{}", id.index()),
                }
            }
        };
        net_name.insert(id, name);
    }
    for (id, net) in nl.nets() {
        let driver_role = net.driver.map(|d| nl.cell(d).role);
        let is_port_net = matches!(
            driver_role,
            Some(CellRole::Input) | Some(CellRole::ClockSource)
        ) || net
            .sinks
            .iter()
            .any(|(c, _)| nl.cell(*c).role == CellRole::Output);
        if !is_port_net {
            let _ = writeln!(out, "  wire {};", net_name[&id]);
        }
    }
    // Instances.
    for (_, cell) in nl.cells() {
        if matches!(
            cell.role,
            CellRole::Input | CellRole::Output | CellRole::ClockSource
        ) {
            continue; // ports are not instances
        }
        let lib = nl.library().cell(cell.lib_cell);
        let pin_names = input_pin_names(lib.function);
        let _ = writeln!(out, "  (* loc = \"{},{}\" *)", cell.loc.x, cell.loc.y);
        let mut conns: Vec<String> = Vec::new();
        for (idx, net) in cell.inputs.iter().enumerate() {
            if let Some(net) = net {
                conns.push(format!(".{}({})", pin_names[idx], net_name[net]));
            }
        }
        if let Some(outn) = cell.output {
            conns.push(format!(
                ".{}({})",
                output_pin_name(lib.function),
                net_name[&outn]
            ));
        }
        let _ = writeln!(out, "  {} {} ({});", lib.name, cell.name, conns.join(", "));
    }
    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::GeneratorConfig;

    const SAMPLE: &str = r#"
// A two-flop pipeline.
module sample (clk, d0, y);
  input clk;
  input d0;
  output y;
  wire n1, n2;
  (* loc = "10,0" *)
  DFF_X1 ff0 (.D(d0), .CK(clk), .Q(n1));
  (* loc = "20,5" *)
  INV_X2 u0 (.A(n1), .Y(n2));
  (* loc = "40,5" *)
  DFF_X1 ff1 (.D(n2), .CK(clk), .Q(y));
endmodule
"#;

    #[test]
    fn rejects_non_finite_loc() {
        for bad in ["NaN,0", "10,inf", "-inf,3"] {
            let text = SAMPLE.replace("10,0", bad);
            let err = parse_verilog(&text).unwrap_err();
            assert!(err.to_string().contains("coordinate"), "{bad}: {err}");
        }
    }

    #[test]
    fn parses_sample_module() {
        let n = parse_verilog(SAMPLE).unwrap();
        assert_eq!(n.name(), "sample");
        let ff0 = n.find_cell("ff0").unwrap();
        assert_eq!(n.cell(ff0).role, CellRole::Sequential);
        assert_eq!(n.cell(ff0).loc, Point::new(10.0, 0.0));
        let u0 = n.find_cell("u0").unwrap();
        assert_eq!(n.library().cell(n.cell(u0).lib_cell).name, "INV_X2");
        // clk classified as a clock source, d0 as a data input.
        assert_eq!(
            n.cell(n.find_cell("clk").unwrap()).role,
            CellRole::ClockSource
        );
        assert_eq!(n.cell(n.find_cell("d0").unwrap()).role, CellRole::Input);
        n.validate().unwrap();
    }

    #[test]
    fn round_trips_generated_design() {
        let original = GeneratorConfig::small(601).generate();
        let verilog = write_verilog(&original);
        let parsed = parse_verilog(&verilog).unwrap();
        assert_eq!(parsed.num_cells(), original.num_cells());
        assert_eq!(parsed.num_nets(), original.num_nets());
        assert_eq!(parsed.total_area(), original.total_area());
        // Placement survives through the loc attributes (ports at origin
        // both ways? ports keep their generated locations only in the
        // text format; Verilog drops port placement, so compare gates).
        for (id, cell) in original.cells() {
            if cell.role == CellRole::Combinational || cell.role == CellRole::Sequential {
                let p = parsed.find_cell(&cell.name).expect("cell survives");
                assert_eq!(parsed.cell(p).loc, original.cell(id).loc, "{}", cell.name);
            }
        }
    }

    #[test]
    fn rejects_unknown_cell_type() {
        let src =
            "module m (a, y);\n input a;\n output y;\n NAND9_X1 u (.A(a), .Y(y));\nendmodule\n";
        assert!(matches!(
            parse_verilog(src),
            Err(ParseVerilogError::UnknownCellType(_))
        ));
    }

    #[test]
    fn rejects_unknown_pin() {
        let src = "module m (clk, a, y);\n input clk;\n input a;\n output y;\n wire q;\n DFF_X1 f (.D(a), .CK(clk), .Q(q));\n INV_X1 u (.Z(q), .Y(y));\nendmodule\n";
        assert!(matches!(
            parse_verilog(src),
            Err(ParseVerilogError::UnknownPin { .. })
        ));
    }

    #[test]
    fn rejects_undeclared_net() {
        let src = "module m (clk, a, y);\n input clk;\n input a;\n output y;\n DFF_X1 f (.D(a), .CK(clk), .Q(ghost));\nendmodule\n";
        assert!(matches!(
            parse_verilog(src),
            Err(ParseVerilogError::UndeclaredNet(_))
        ));
    }

    #[test]
    fn rejects_missing_endmodule() {
        let src = "module m (a);\n input a;\n";
        assert!(matches!(
            parse_verilog(src),
            Err(ParseVerilogError::Syntax(_))
        ));
    }

    #[test]
    fn comments_are_ignored() {
        let n = parse_verilog(SAMPLE).unwrap();
        assert_eq!(n.name(), "sample");
    }

    #[test]
    fn errors_display_cleanly() {
        let e = ParseVerilogError::UnknownPin {
            cell_type: "INV_X1".into(),
            pin: "Z".into(),
        };
        assert!(e.to_string().contains("INV_X1"));
        assert!(e.to_string().contains('Z'));
    }
}
