//! Design statistics: the structural profile of a netlist.
//!
//! Used by the generator's own tests (to verify the synthetic designs
//! look like circuits rather than random graphs), by the CLI's `stats`
//! subcommand, and by anyone deciding whether a design is a reasonable
//! workload for the mGBA experiments.

use crate::cell::CellRole;
use crate::ids::PinIndex;
use crate::library::DriveStrength;
use crate::netlist::Netlist;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Structural profile of a design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignStats {
    /// Design name.
    pub name: String,
    /// Total cell instances (ports included).
    pub cells: usize,
    /// Combinational gates.
    pub combinational: usize,
    /// Flip-flops.
    pub sequential: usize,
    /// Clock-tree cells (source + buffers).
    pub clock_cells: usize,
    /// Primary inputs (data only).
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Nets.
    pub nets: usize,
    /// Instance count per library-cell variant name.
    pub by_variant: BTreeMap<String, usize>,
    /// Instance count per drive strength (combinational only).
    pub by_drive: BTreeMap<String, usize>,
    /// Maximum logic depth (combinational stages) over all paths.
    pub max_logic_depth: usize,
    /// Maximum net fanout.
    pub max_fanout: usize,
    /// Mean net fanout (driven nets only).
    pub mean_fanout: f64,
    /// Total estimated wirelength, µm.
    pub total_wirelength: f64,
    /// Total cell area, µm².
    pub area: f64,
    /// Total leakage, nW.
    pub leakage: f64,
}

impl DesignStats {
    /// Profiles `netlist`.
    pub fn collect(netlist: &Netlist) -> Self {
        let mut by_variant: BTreeMap<String, usize> = BTreeMap::new();
        let mut by_drive: BTreeMap<String, usize> = BTreeMap::new();
        let mut combinational = 0;
        let mut sequential = 0;
        let mut clock_cells = 0;
        let mut inputs = 0;
        let mut outputs = 0;
        for (_, cell) in netlist.cells() {
            let lib = netlist.library().cell(cell.lib_cell);
            *by_variant.entry(lib.name.clone()).or_default() += 1;
            match cell.role {
                CellRole::Combinational => {
                    combinational += 1;
                    *by_drive.entry(lib.drive.to_string()).or_default() += 1;
                }
                CellRole::Sequential => sequential += 1,
                CellRole::ClockBuffer | CellRole::ClockSource => clock_cells += 1,
                CellRole::Input => inputs += 1,
                CellRole::Output => outputs += 1,
            }
        }

        // Logic depth: longest chain of combinational gates between path
        // boundaries, via DP over the dependency topological order.
        let mut depth = vec![0usize; netlist.num_cells()];
        let mut max_logic_depth = 0;
        if let Ok(order) = netlist.topo_order() {
            for c in order {
                let cell = netlist.cell(c);
                if cell.role != CellRole::Combinational {
                    continue;
                }
                let mut best = 0usize;
                for (pin, net) in cell.inputs.iter().enumerate() {
                    if cell.role == CellRole::Sequential && pin != PinIndex::FF_CK.index() {
                        continue;
                    }
                    if let Some(net) = net {
                        if let Some(driver) = netlist.net(*net).driver {
                            if netlist.cell(driver).role == CellRole::Combinational {
                                best = best.max(depth[driver.index()]);
                            }
                        }
                    }
                }
                depth[c.index()] = best + 1;
                max_logic_depth = max_logic_depth.max(best + 1);
            }
        }

        let mut max_fanout = 0usize;
        let mut fanout_sum = 0usize;
        let mut driven = 0usize;
        let mut total_wirelength = 0.0;
        for (id, net) in netlist.nets() {
            if net.driver.is_some() {
                driven += 1;
                fanout_sum += net.sinks.len();
                max_fanout = max_fanout.max(net.sinks.len());
                total_wirelength += netlist.net_length(id);
            }
        }

        Self {
            name: netlist.name().to_owned(),
            cells: netlist.num_cells(),
            combinational,
            sequential,
            clock_cells,
            inputs,
            outputs,
            nets: netlist.num_nets(),
            by_variant,
            by_drive,
            max_logic_depth,
            max_fanout,
            mean_fanout: if driven > 0 {
                fanout_sum as f64 / driven as f64
            } else {
                0.0
            },
            total_wirelength,
            area: netlist.total_area(),
            leakage: netlist.total_leakage(),
        }
    }

    /// Instance count at a given drive strength.
    pub fn at_drive(&self, drive: DriveStrength) -> usize {
        self.by_drive.get(&drive.to_string()).copied().unwrap_or(0)
    }
}

impl fmt::Display for DesignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "design {}", self.name)?;
        writeln!(
            f,
            "  cells {} (comb {}, seq {}, clock {}, in {}, out {}), nets {}",
            self.cells,
            self.combinational,
            self.sequential,
            self.clock_cells,
            self.inputs,
            self.outputs,
            self.nets
        )?;
        writeln!(
            f,
            "  max logic depth {}, fanout max {} / mean {:.2}",
            self.max_logic_depth, self.max_fanout, self.mean_fanout
        )?;
        writeln!(
            f,
            "  wirelength {:.0} um, area {:.1} um^2, leakage {:.0} nW",
            self.total_wirelength, self.area, self.leakage
        )?;
        writeln!(f, "  drive mix:")?;
        for (drive, count) in &self.by_drive {
            writeln!(f, "    {drive:<4} {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{DesignSpec, GeneratorConfig};

    #[test]
    fn profile_of_small_design_is_sane() {
        let n = GeneratorConfig::small(901).generate();
        let s = DesignStats::collect(&n);
        assert_eq!(s.cells, n.num_cells());
        assert_eq!(
            s.combinational + s.sequential + s.clock_cells + s.inputs + s.outputs,
            s.cells
        );
        assert_eq!(s.sequential, 4 * 12);
        assert!(s.max_logic_depth >= 4, "cloud depth lower bound");
        assert!(s.max_logic_depth <= 8 * 3 + 3, "skips cannot exceed clouds");
        assert!(s.mean_fanout >= 1.0);
        assert!(s.total_wirelength > 0.0);
    }

    #[test]
    fn drive_mix_reflects_generator_fractions() {
        let n = GeneratorConfig::small(902).generate();
        let s = DesignStats::collect(&n);
        let x1 = s.at_drive(DriveStrength::X1);
        let x2 = s.at_drive(DriveStrength::X2);
        let x4 = s.at_drive(DriveStrength::X4);
        assert!(x1 > x2, "X1 majority: {x1} vs {x2}");
        assert!(x2 > 0 && x4 > 0);
        assert_eq!(s.at_drive(DriveStrength::X8), 0, "generator stops at X4");
    }

    #[test]
    fn variant_counts_sum_to_cells() {
        let n = DesignSpec::D1.generate();
        let s = DesignStats::collect(&n);
        let total: usize = s.by_variant.values().sum();
        assert_eq!(total, s.cells);
    }

    #[test]
    fn display_is_complete() {
        let n = GeneratorConfig::small(903).generate();
        let s = DesignStats::collect(&n);
        let text = s.to_string();
        assert!(text.contains("drive mix"));
        assert!(text.contains("max logic depth"));
    }
}
