//! Seeded synthetic design generation.
//!
//! The paper evaluates on ten proprietary industrial designs (65 nm–16 nm).
//! This module is the documented substitution: a deterministic generator
//! that produces FF-bounded, placed, clock-tree-equipped designs whose
//! *structure* exercises everything the algorithms care about:
//!
//! - **Reconvergent layered logic with skip connections** — paths through a
//!   given gate have widely different lengths, which is exactly what makes
//!   GBA's worst-cell-depth derate pessimistic relative to PBA.
//! - **Placement spread** — paths have different bounding boxes, exercising
//!   the distance axis of the AOCV derate table.
//! - **A shared clock tree** — launch and capture paths overlap, exercising
//!   CRPR.
//! - **A mix of drive strengths** — leaves headroom for the sizing
//!   transform in the timing-closure flow.
//!
//! Presets [`DesignSpec::D1`]–[`DesignSpec::D10`] mirror the relative size
//! ordering of the paper's designs at laptop scale.

use crate::ids::{CellId, NetId};
use crate::library::{DriveStrength, Function, Library};
use crate::netlist::{Netlist, NetlistBuilder};
use crate::point::Point;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of the synthetic design generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Design name.
    pub name: String,
    /// RNG seed; the same config always yields the same netlist.
    pub seed: u64,
    /// Number of combinational clouds (pipeline stages). There are
    /// `num_stages + 1` flip-flop banks.
    pub num_stages: usize,
    /// Flip-flops per bank.
    pub ffs_per_stage: usize,
    /// Gates per logic level inside a cloud.
    pub cloud_width: usize,
    /// Inclusive range of logic levels per cloud; each cloud draws its
    /// depth uniformly from this range.
    pub cloud_depth: (usize, usize),
    /// Probability that a gate input reaches back past the previous level
    /// (to an earlier level or a launching flip-flop). Skip connections are
    /// the main source of per-gate path-depth divergence.
    pub skip_probability: f64,
    /// Fraction of clouds generated *clean* (no skip connections). Paths
    /// inside clean clouds have uniform depth, so GBA barely pessimizes
    /// them; the mix controls how much of the design GBA already times
    /// accurately (the spread of the paper's Table 3 GBA column).
    pub clean_cloud_fraction: f64,
    /// Die edge length in µm; placement spreads over this square.
    pub die_size: f64,
    /// Levels of the binary clock-buffer tree.
    pub clock_levels: usize,
    /// Primary input ports feeding the first cloud.
    pub primary_inputs: usize,
    /// Fraction of gates instantiated at X2 instead of X1 (the optimizer
    /// upsizes from there).
    pub x2_fraction: f64,
    /// Fraction of gates instantiated at X4 — pre-existing design margin
    /// the recovery phase can reclaim.
    pub x4_fraction: f64,
}

impl GeneratorConfig {
    /// A small smoke-test design (~200 gates), handy in unit tests.
    pub fn small(seed: u64) -> Self {
        Self {
            name: format!("small_{seed}"),
            seed,
            num_stages: 3,
            ffs_per_stage: 12,
            cloud_width: 10,
            cloud_depth: (4, 8),
            skip_probability: 0.25,
            clean_cloud_fraction: 0.4,
            die_size: 300.0,
            clock_levels: 2,
            primary_inputs: 6,
            x2_fraction: 0.3,
            x4_fraction: 0.1,
        }
    }

    /// Generates the netlist described by this configuration.
    pub fn generate(&self) -> Netlist {
        generate(self)
    }
}

/// The ten benchmark designs standing in for the paper's D1–D10.
///
/// Relative sizes follow the paper's Table 3 "selected timing paths"
/// column ordering (D1 smallest; D2, D8, D9, D10 largest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DesignSpec {
    D1,
    D2,
    D3,
    D4,
    D5,
    D6,
    D7,
    D8,
    D9,
    D10,
}

impl DesignSpec {
    /// All ten designs in order.
    pub fn all() -> [DesignSpec; 10] {
        use DesignSpec::*;
        [D1, D2, D3, D4, D5, D6, D7, D8, D9, D10]
    }

    /// The generator configuration for this design.
    pub fn config(self) -> GeneratorConfig {
        use DesignSpec::*;
        let (seed, stages, ffs, width, depth, skip, clean, die, clk_lv, pis) = match self {
            D1 => (101, 4, 36, 26, (5, 10), 0.14, 0.85, 400.0, 2, 12),
            D2 => (102, 8, 110, 84, (10, 26), 0.16, 0.40, 1400.0, 5, 40),
            D3 => (103, 6, 72, 56, (8, 16), 0.13, 0.70, 800.0, 4, 24),
            D4 => (104, 6, 64, 52, (8, 14), 0.12, 0.40, 750.0, 4, 24),
            D5 => (105, 5, 48, 38, (6, 12), 0.15, 0.25, 600.0, 4, 16),
            D6 => (106, 7, 76, 58, (8, 18), 0.12, 0.60, 900.0, 4, 28),
            D7 => (107, 6, 70, 56, (10, 16), 0.10, 0.55, 850.0, 4, 24),
            D8 => (108, 9, 104, 76, (12, 28), 0.20, 0.00, 1500.0, 5, 36),
            D9 => (109, 8, 96, 70, (10, 22), 0.17, 0.25, 1200.0, 5, 32),
            D10 => (110, 8, 90, 66, (10, 20), 0.16, 0.55, 1100.0, 5, 32),
        };
        GeneratorConfig {
            name: self.to_string(),
            seed,
            num_stages: stages,
            ffs_per_stage: ffs,
            cloud_width: width,
            cloud_depth: depth,
            skip_probability: skip,
            clean_cloud_fraction: clean,
            die_size: die,
            clock_levels: clk_lv,
            primary_inputs: pis,
            x2_fraction: 0.3,
            x4_fraction: 0.15,
        }
    }

    /// Generates this design's netlist.
    pub fn generate(self) -> Netlist {
        self.config().generate()
    }
}

impl fmt::Display for DesignSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", *self as usize + 1)
    }
}

/// Weighted pool of combinational functions used for cloud gates.
const GATE_POOL: &[(Function, u32)] = &[
    (Function::Nand2, 26),
    (Function::Nor2, 13),
    (Function::And2, 12),
    (Function::Or2, 10),
    (Function::Inv, 16),
    (Function::Buf, 4),
    (Function::Xor2, 6),
    (Function::Aoi21, 8),
    (Function::Mux2, 5),
];

fn pick_function(rng: &mut StdRng) -> Function {
    let total: u32 = GATE_POOL.iter().map(|&(_, w)| w).sum();
    let mut roll = rng.random_range(0..total);
    for &(f, w) in GATE_POOL {
        if roll < w {
            return f;
        }
        roll -= w;
    }
    unreachable!("weights cover the roll range")
}

fn pick_drive(rng: &mut StdRng, x2_fraction: f64, x4_fraction: f64) -> DriveStrength {
    let roll: f64 = rng.random();
    if roll < x4_fraction {
        DriveStrength::X4
    } else if roll < x4_fraction + x2_fraction {
        DriveStrength::X2
    } else {
        DriveStrength::X1
    }
}

/// Builds the binary clock tree and returns the leaf clock nets together
/// with the leaf centre positions (FFs attach to the nearest leaf).
fn build_clock_tree(
    b: &mut NetlistBuilder,
    clk_root: NetId,
    levels: usize,
    die: f64,
) -> Vec<(NetId, Point)> {
    // Recursive spatial bisection: each buffer covers a rectangle and
    // spawns two children over the halves, alternating split axis.
    struct Region {
        net: NetId,
        x0: f64,
        y0: f64,
        x1: f64,
        y1: f64,
        level: usize,
    }
    let mut leaves = Vec::new();
    let mut stack = vec![Region {
        net: clk_root,
        x0: 0.0,
        y0: 0.0,
        x1: die,
        y1: die,
        level: 0,
    }];
    let mut counter = 0usize;
    while let Some(r) = stack.pop() {
        let centre = Point::new((r.x0 + r.x1) / 2.0, (r.y0 + r.y1) / 2.0);
        if r.level == levels {
            leaves.push((r.net, centre));
            continue;
        }
        let name = format!("cts_{counter}");
        counter += 1;
        let buf = b
            .add_gate(&name, "CLKBUF_X4", centre, &[r.net])
            .expect("clock buffer instantiation cannot fail");
        let out = b.cell_output(buf);
        let horizontal = (r.x1 - r.x0) >= (r.y1 - r.y0);
        let (a, c) = if horizontal {
            let mid = (r.x0 + r.x1) / 2.0;
            (
                Region {
                    net: out,
                    x0: r.x0,
                    y0: r.y0,
                    x1: mid,
                    y1: r.y1,
                    level: r.level + 1,
                },
                Region {
                    net: out,
                    x0: mid,
                    y0: r.y0,
                    x1: r.x1,
                    y1: r.y1,
                    level: r.level + 1,
                },
            )
        } else {
            let mid = (r.y0 + r.y1) / 2.0;
            (
                Region {
                    net: out,
                    x0: r.x0,
                    y0: r.y0,
                    x1: r.x1,
                    y1: mid,
                    level: r.level + 1,
                },
                Region {
                    net: out,
                    x0: r.x0,
                    y0: mid,
                    x1: r.x1,
                    y1: r.y1,
                    level: r.level + 1,
                },
            )
        };
        stack.push(a);
        stack.push(c);
    }
    leaves
}

/// Generates a netlist from `config`. See the module docs for the design
/// structure. Deterministic in `config.seed`.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero stages, zero width, or
/// an empty depth range).
pub fn generate(config: &GeneratorConfig) -> Netlist {
    assert!(config.num_stages > 0, "need at least one stage");
    assert!(config.cloud_width > 0, "need at least one gate per level");
    assert!(
        config.cloud_depth.0 >= 1 && config.cloud_depth.0 <= config.cloud_depth.1,
        "invalid depth range"
    );
    assert!(config.ffs_per_stage > 0, "need at least one flip-flop");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = NetlistBuilder::new(config.name.clone(), Library::standard());
    let die = config.die_size;

    // Clock network.
    let clk_port = b.add_clock_port("clk", Point::new(die / 2.0, die / 2.0));
    let leaves = build_clock_tree(&mut b, clk_port, config.clock_levels, die);

    let nearest_leaf = |loc: Point, leaves: &[(NetId, Point)]| -> NetId {
        leaves
            .iter()
            .min_by(|a, b| {
                a.1.euclidean(loc)
                    .partial_cmp(&b.1.euclidean(loc))
                    .expect("distances are finite")
            })
            .expect("clock tree has at least one leaf")
            .0
    };

    // Flip-flop banks at stage boundaries.
    let banks = config.num_stages + 1;
    let stage_w = die / banks as f64;
    let mut bank_ffs: Vec<Vec<CellId>> = Vec::with_capacity(banks);
    for bank in 0..banks {
        let x = bank as f64 * stage_w + 0.05 * stage_w;
        let mut ffs = Vec::with_capacity(config.ffs_per_stage);
        for i in 0..config.ffs_per_stage {
            let y =
                (i as f64 + 0.5) / config.ffs_per_stage as f64 * die + rng.random_range(-2.0..2.0);
            let loc = Point::new(x, y.clamp(0.0, die));
            let clk = nearest_leaf(loc, &leaves);
            let drive = pick_drive(&mut rng, config.x2_fraction, config.x4_fraction);
            let lib = format!("DFF_{drive}");
            let ff = b
                .add_flip_flop(&format!("ff_{bank}_{i}"), &lib, loc, clk)
                .expect("generated flip-flop names are unique");
            ffs.push(ff);
        }
        bank_ffs.push(ffs);
    }

    // Primary inputs on the left edge.
    let mut pi_nets = Vec::with_capacity(config.primary_inputs.max(1));
    for i in 0..config.primary_inputs.max(1) {
        let y = (i as f64 + 0.5) / config.primary_inputs.max(1) as f64 * die;
        pi_nets.push(b.add_input(&format!("pi_{i}"), Point::new(0.0, y)));
    }

    // Bank 0 registers the primary inputs (input flops).
    for (i, &ff) in bank_ffs[0].iter().enumerate() {
        b.connect_flip_flop_d_net(ff, pi_nets[i % pi_nets.len()]);
    }

    // Combinational clouds.
    for stage in 0..config.num_stages {
        let depth = rng.random_range(config.cloud_depth.0..=config.cloud_depth.1);
        // Clean clouds have no skip connections: every path through them
        // has the full cloud depth, so GBA's worst-depth derate matches
        // PBA and those paths carry almost no pessimism.
        let skip_probability = if rng.random_bool(config.clean_cloud_fraction) {
            0.0
        } else {
            config.skip_probability
        };
        let x_lo = stage as f64 * stage_w + 0.12 * stage_w;
        let x_hi = (stage + 1) as f64 * stage_w - 0.05 * stage_w;

        // Sources available to level 0 (and to skip connections).
        let launch_nets: Vec<NetId> = bank_ffs[stage]
            .iter()
            .map(|&ff| b.cell_output(ff))
            .chain(if stage == 0 {
                pi_nets.clone()
            } else {
                Vec::new()
            })
            .collect();

        let mut levels: Vec<Vec<NetId>> = vec![launch_nets];
        for level in 0..depth {
            let x = x_lo + (level as f64 + 0.5) / depth as f64 * (x_hi - x_lo);
            let prev: &[NetId] = levels.last().expect("levels is never empty");
            let prev = prev.to_vec();
            let mut outs = Vec::with_capacity(config.cloud_width);
            // Round-robin cursor guaranteeing every previous-level net is
            // consumed at least once (no dead logic inside a cloud).
            let mut rr = 0usize;
            for g in 0..config.cloud_width {
                let function = pick_function(&mut rng);
                let drive = pick_drive(&mut rng, config.x2_fraction, config.x4_fraction);
                let lib = format!("{}_{}", function.short_name(), drive);
                let mut inputs = Vec::with_capacity(function.arity());
                for slot in 0..function.arity() {
                    let net = if slot == 0 && rr < prev.len() {
                        let n = prev[rr];
                        rr += 1;
                        n
                    } else if skip_probability > 0.0
                        && rng.random_bool(skip_probability)
                        && levels.len() > 1
                    {
                        // Skip connection: reach back to a uniformly random
                        // earlier level (including the launch bank).
                        let lvl = rng.random_range(0..levels.len().saturating_sub(1));
                        *levels[lvl].choose(&mut rng).expect("every level has nets")
                    } else {
                        *prev.choose(&mut rng).expect("previous level has nets")
                    };
                    inputs.push(net);
                }
                // Place the gate near the centroid of its inputs (with
                // jitter): real placers optimize wirelength, and without
                // locality every net would span the die and wire/load
                // delay would dwarf cell delay.
                let centroid_y = {
                    let ys: Vec<f64> = inputs
                        .iter()
                        .filter_map(|&net| b.net_driver_location(net))
                        .map(|p| p.y)
                        .collect();
                    if ys.is_empty() {
                        rng.random_range(0.0..die)
                    } else {
                        ys.iter().sum::<f64>() / ys.len() as f64
                    }
                };
                let jitter = rng.random_range(-0.06 * die..0.06 * die);
                let y = (centroid_y + jitter).clamp(0.0, die);
                let cell = b
                    .add_gate(
                        &format!("g_{stage}_{level}_{g}"),
                        &lib,
                        Point::new(x, y),
                        &inputs,
                    )
                    .expect("generated gate names are unique and arities match");
                outs.push(b.cell_output(cell));
            }
            levels.push(outs);
        }

        // Capture: every FF of the next bank takes a last-level output;
        // round-robin so every last-level gate is consumed when possible.
        let last = levels.last().expect("cloud has at least one level").clone();
        for (i, &ff) in bank_ffs[stage + 1].iter().enumerate() {
            let net = last[i % last.len()];
            b.connect_flip_flop_d_net(ff, net);
        }
        // Any last-level outputs not picked up by FFs become primary
        // outputs (observable test points) so no logic dangles.
        if last.len() > bank_ffs[stage + 1].len() {
            for (j, &net) in last.iter().enumerate().skip(bank_ffs[stage + 1].len()) {
                let y = rng.random_range(0.0..die);
                b.add_output(&format!("po_spare_{stage}_{j}"), Point::new(die, y), net)
                    .expect("generated port names are unique");
            }
        }
    }

    // Final bank drives primary outputs.
    let final_bank = bank_ffs.last().expect("at least one bank");
    for (i, &ff) in final_bank.iter().enumerate() {
        let y = (i as f64 + 0.5) / final_bank.len() as f64 * die;
        let q = b.cell_output(ff);
        b.add_output(&format!("po_{i}"), Point::new(die, y), q)
            .expect("generated port names are unique");
    }

    b.build()
        .expect("generator maintains all structural invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellRole;

    #[test]
    fn small_design_is_valid_and_deterministic() {
        let a = GeneratorConfig::small(7).generate();
        let b = GeneratorConfig::small(7).generate();
        assert_eq!(a.num_cells(), b.num_cells());
        assert_eq!(a.num_nets(), b.num_nets());
        assert_eq!(a.total_area(), b.total_area());
        a.validate().unwrap();
    }

    #[test]
    fn different_seeds_differ() {
        let a = GeneratorConfig::small(1).generate();
        let b = GeneratorConfig::small(2).generate();
        // Same structure sizes but different wiring → different wirelength.
        let total_a: f64 = a.nets().map(|(id, _)| a.net_length(id)).sum();
        let total_b: f64 = b.nets().map(|(id, _)| b.net_length(id)).sum();
        assert_ne!(total_a, total_b);
    }

    #[test]
    fn has_clock_tree_and_banks() {
        let n = GeneratorConfig::small(3).generate();
        let clk_bufs = n
            .cells()
            .filter(|(_, c)| c.role == CellRole::ClockBuffer)
            .count();
        // 2 levels of binary tree = 1 + 2 = 3 internal buffers.
        assert_eq!(clk_bufs, 3);
        let ffs = n
            .cells()
            .filter(|(_, c)| c.role == CellRole::Sequential)
            .count();
        assert_eq!(ffs, 4 * 12); // (stages+1) banks × ffs_per_stage
    }

    #[test]
    fn d1_preset_generates() {
        let n = DesignSpec::D1.generate();
        n.validate().unwrap();
        assert!(n.num_cells() > 500, "D1 should be non-trivial");
        assert_eq!(n.name(), "D1");
    }

    #[test]
    fn presets_are_ordered_reasonably() {
        // D2 and D8 are the big designs in the paper; verify the presets
        // respect that ordering without generating the giants repeatedly.
        let d1 = DesignSpec::D1.config();
        let d8 = DesignSpec::D8.config();
        assert!(
            d8.num_stages * d8.cloud_width * d8.cloud_depth.1
                > d1.num_stages * d1.cloud_width * d1.cloud_depth.1
        );
        assert_eq!(DesignSpec::all().len(), 10);
        assert_eq!(DesignSpec::D10.to_string(), "D10");
    }

    #[test]
    fn no_dead_gates_feed_nothing() {
        let n = GeneratorConfig::small(11).generate();
        for (id, cell) in n.cells() {
            if cell.role == CellRole::Combinational {
                let out = cell.output.expect("combinational gates drive nets");
                assert!(
                    !n.net(out).sinks.is_empty(),
                    "gate {} output dangles",
                    n.cell(id).name
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn degenerate_config_panics() {
        let mut c = GeneratorConfig::small(1);
        c.num_stages = 0;
        let _ = c.generate();
    }
}
