//! Cell instances.

use crate::ids::{LibCellId, NetId};
use crate::library::Function;
use crate::point::Point;
use serde::{Deserialize, Serialize};

/// Structural role of a cell instance, derived from its library function.
///
/// Downstream analyses branch on the role constantly (ports anchor the
/// timing graph, sequentials split it into launch/capture stages, clock
/// cells are exempt from data-path transforms), so it is precomputed here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellRole {
    /// Primary input port.
    Input,
    /// Primary output port.
    Output,
    /// Clock source port (an input port distributing the clock).
    ClockSource,
    /// Flip-flop.
    Sequential,
    /// Clock-tree buffer.
    ClockBuffer,
    /// Ordinary combinational gate.
    Combinational,
}

impl CellRole {
    /// Whether this cell launches or terminates data paths.
    pub fn is_path_boundary(self) -> bool {
        matches!(
            self,
            CellRole::Input | CellRole::Output | CellRole::Sequential
        )
    }

    /// Whether this cell belongs to the clock network.
    pub fn is_clock_network(self) -> bool {
        matches!(self, CellRole::ClockSource | CellRole::ClockBuffer)
    }
}

/// A cell instance in a [`Netlist`](crate::Netlist).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Instance name, unique within the netlist.
    pub name: String,
    /// The characterized library cell implementing this instance.
    pub lib_cell: LibCellId,
    /// Structural role.
    pub role: CellRole,
    /// Placement location.
    pub loc: Point,
    /// Input nets, one per input pin in pin order. A slot may be `None`
    /// while the netlist is under construction; [`NetlistBuilder::build`]
    /// rejects unconnected pins.
    ///
    /// [`NetlistBuilder::build`]: crate::NetlistBuilder::build
    pub inputs: Vec<Option<NetId>>,
    /// The net driven by this cell's output pin, if it has one.
    pub output: Option<NetId>,
}

impl Cell {
    /// Creates an unconnected instance of `lib_cell` with `arity` input slots.
    pub(crate) fn new(
        name: String,
        lib_cell: LibCellId,
        function: Function,
        role: CellRole,
        loc: Point,
    ) -> Self {
        Self {
            name,
            lib_cell,
            role,
            loc,
            inputs: vec![None; function.arity()],
            output: None,
        }
    }

    /// Iterates over the connected input nets (skipping unconnected slots).
    pub fn input_nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.inputs.iter().filter_map(|n| *n)
    }

    /// Whether every input pin is connected and the output (if required)
    /// drives a net.
    pub fn fully_connected(&self, has_output: bool) -> bool {
        self.inputs.iter().all(Option::is_some) && (!has_output || self.output.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_predicates() {
        assert!(CellRole::Input.is_path_boundary());
        assert!(CellRole::Sequential.is_path_boundary());
        assert!(!CellRole::Combinational.is_path_boundary());
        assert!(CellRole::ClockBuffer.is_clock_network());
        assert!(CellRole::ClockSource.is_clock_network());
        assert!(!CellRole::Sequential.is_clock_network());
    }

    #[test]
    fn new_cell_has_empty_slots() {
        let c = Cell::new(
            "u1".to_owned(),
            LibCellId::new(0),
            Function::Nand2,
            CellRole::Combinational,
            Point::ORIGIN,
        );
        assert_eq!(c.inputs.len(), 2);
        assert_eq!(c.input_nets().count(), 0);
        assert!(!c.fully_connected(true));
    }
}
