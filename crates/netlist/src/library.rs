//! Characterized cell library.
//!
//! A [`Library`] plays the role of a Liberty (`.lib`) file: it lists every
//! available cell variant with its logic [`Function`], [`DriveStrength`],
//! and characterization data — a linear delay model, a linear output-slew
//! model, pin capacitance, area, and leakage power.
//!
//! The delay model is the classic first-order one used by fast timers:
//!
//! ```text
//! delay(load, input_slew) = intrinsic + drive_res · load + slew_sens · input_slew
//! slew_out(load)          = slew_intrinsic + slew_res · load
//! ```
//!
//! with `load` in femtofarads, times in picoseconds. Larger drive strengths
//! have smaller `drive_res` (they charge loads faster) but more input
//! capacitance, area, and leakage — the fundamental sizing trade-off the
//! timing-closure optimizer navigates.

use crate::ids::LibCellId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Logic function of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Function {
    /// Primary input port (no delay, no pins to drive it).
    Input,
    /// Primary output port (one input pin, no output).
    Output,
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Inv,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2:1 multiplexer (3 input pins: A, B, S).
    Mux2,
    /// AND-OR-INVERT 2-1 (3 input pins).
    Aoi21,
    /// D flip-flop (pins: D, CK; output Q).
    Dff,
    /// Clock buffer (electrically a buffer, but kept distinct so clock-tree
    /// cells are recognizable and are never resized by data-path transforms).
    ClkBuf,
}

impl Function {
    /// Number of input pins instances of this function have.
    pub fn arity(self) -> usize {
        match self {
            Function::Input => 0,
            Function::Output | Function::Buf | Function::Inv | Function::ClkBuf => 1,
            Function::Nand2 | Function::Nor2 | Function::And2 | Function::Or2 | Function::Xor2 => 2,
            Function::Mux2 | Function::Aoi21 => 3,
            Function::Dff => 2, // D, CK
        }
    }

    /// Whether instances drive a net (everything except primary outputs).
    pub fn has_output(self) -> bool {
        !matches!(self, Function::Output)
    }

    /// Whether this is a sequential element.
    pub fn is_sequential(self) -> bool {
        matches!(self, Function::Dff)
    }

    /// Whether this is a port (primary input or output).
    pub fn is_port(self) -> bool {
        matches!(self, Function::Input | Function::Output)
    }

    /// Whether this is ordinary combinational logic (derateable, sizable).
    pub fn is_combinational(self) -> bool {
        !self.is_sequential() && !self.is_port()
    }

    /// Short name used in cell-variant names (`NAND2` in `NAND2_X2`).
    pub fn short_name(self) -> &'static str {
        match self {
            Function::Input => "IN",
            Function::Output => "OUT",
            Function::Buf => "BUF",
            Function::Inv => "INV",
            Function::Nand2 => "NAND2",
            Function::Nor2 => "NOR2",
            Function::And2 => "AND2",
            Function::Or2 => "OR2",
            Function::Xor2 => "XOR2",
            Function::Mux2 => "MUX2",
            Function::Aoi21 => "AOI21",
            Function::Dff => "DFF",
            Function::ClkBuf => "CLKBUF",
        }
    }

    /// Data-input pin names in pin-index order, using the library's
    /// interchange convention (`A`/`B`/`C` for gates, `D`/`CK` for
    /// flip-flops). Shared by every text importer/exporter — structural
    /// Verilog and EDIF — so the formats agree on pin naming.
    pub fn input_pin_names(self) -> &'static [&'static str] {
        match self {
            Function::Dff => &["D", "CK"],
            Function::Buf | Function::Inv | Function::ClkBuf | Function::Output => &["A"],
            Function::Nand2 | Function::Nor2 | Function::And2 | Function::Or2 | Function::Xor2 => {
                &["A", "B"]
            }
            Function::Mux2 | Function::Aoi21 => &["A", "B", "C"],
            Function::Input => &[],
        }
    }

    /// Output pin name in the interchange convention (`Q` for
    /// flip-flops, `Y` otherwise).
    pub fn output_pin_name(self) -> &'static str {
        if self == Function::Dff {
            "Q"
        } else {
            "Y"
        }
    }

    /// All functions that have characterized library cells.
    pub fn all_characterized() -> &'static [Function] {
        &[
            Function::Buf,
            Function::Inv,
            Function::Nand2,
            Function::Nor2,
            Function::And2,
            Function::Or2,
            Function::Xor2,
            Function::Mux2,
            Function::Aoi21,
            Function::Dff,
            Function::ClkBuf,
        ]
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Drive strength of a cell variant.
///
/// Encodes the multiple of the unit transistor width, `X1` being the
/// weakest. The ordering matters: the sizing transform moves cells up and
/// down this ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DriveStrength {
    /// 1× unit drive.
    X1,
    /// 2× unit drive.
    X2,
    /// 4× unit drive.
    X4,
    /// 8× unit drive.
    X8,
}

impl DriveStrength {
    /// Numeric multiplier of the drive strength.
    pub fn factor(self) -> f64 {
        match self {
            DriveStrength::X1 => 1.0,
            DriveStrength::X2 => 2.0,
            DriveStrength::X4 => 4.0,
            DriveStrength::X8 => 8.0,
        }
    }

    /// The next stronger variant, or `None` at the top of the ladder.
    pub fn upsize(self) -> Option<DriveStrength> {
        match self {
            DriveStrength::X1 => Some(DriveStrength::X2),
            DriveStrength::X2 => Some(DriveStrength::X4),
            DriveStrength::X4 => Some(DriveStrength::X8),
            DriveStrength::X8 => None,
        }
    }

    /// The next weaker variant, or `None` at the bottom of the ladder.
    pub fn downsize(self) -> Option<DriveStrength> {
        match self {
            DriveStrength::X1 => None,
            DriveStrength::X2 => Some(DriveStrength::X1),
            DriveStrength::X4 => Some(DriveStrength::X2),
            DriveStrength::X8 => Some(DriveStrength::X4),
        }
    }

    /// All drive strengths, weakest first.
    pub fn ladder() -> &'static [DriveStrength] {
        &[
            DriveStrength::X1,
            DriveStrength::X2,
            DriveStrength::X4,
            DriveStrength::X8,
        ]
    }
}

impl fmt::Display for DriveStrength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriveStrength::X1 => f.write_str("X1"),
            DriveStrength::X2 => f.write_str("X2"),
            DriveStrength::X4 => f.write_str("X4"),
            DriveStrength::X8 => f.write_str("X8"),
        }
    }
}

/// One characterized cell variant (a row of the Liberty file).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LibCell {
    /// Variant name, e.g. `NAND2_X2`.
    pub name: String,
    /// Logic function.
    pub function: Function,
    /// Drive strength.
    pub drive: DriveStrength,
    /// Cell area in µm².
    pub area: f64,
    /// Leakage power in nW.
    pub leakage: f64,
    /// Input capacitance per pin in fF.
    pub input_cap: f64,
    /// Intrinsic (zero-load) delay in ps. For flip-flops this is the
    /// clock-to-Q delay.
    pub intrinsic: f64,
    /// Output resistance term in ps/fF.
    pub drive_res: f64,
    /// Delay sensitivity to input slew (ps of delay per ps of slew).
    pub slew_sens: f64,
    /// Intrinsic output slew in ps.
    pub slew_intrinsic: f64,
    /// Output slew growth in ps/fF.
    pub slew_res: f64,
    /// Maximum load the cell may legally drive, in fF.
    pub max_load: f64,
    /// Setup time in ps (flip-flops only, `0` otherwise).
    pub setup: f64,
    /// Hold time in ps (flip-flops only, `0` otherwise).
    pub hold: f64,
}

impl LibCell {
    /// Gate delay under the linear model, in ps.
    ///
    /// `load` is the total capacitance on the output net in fF and
    /// `input_slew` the transition time at the switching input in ps.
    #[inline]
    pub fn delay(&self, load: f64, input_slew: f64) -> f64 {
        self.intrinsic + self.drive_res * load + self.slew_sens * input_slew
    }

    /// Output transition time under the linear model, in ps.
    #[inline]
    pub fn output_slew(&self, load: f64) -> f64 {
        self.slew_intrinsic + self.slew_res * load
    }

    /// Whether `load` exceeds the characterized maximum.
    #[inline]
    pub fn overloaded(&self, load: f64) -> bool {
        load > self.max_load
    }
}

/// A characterized cell library.
///
/// Use [`Library::standard`] for the default 45 nm-flavoured library, or
/// build a custom characterization incrementally with [`Library::new`] +
/// [`Library::add`] (or read a Liberty file via
/// [`parse_liberty`](crate::liberty::parse_liberty)).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Library {
    name: String,
    cells: Vec<LibCell>,
    by_name: HashMap<String, LibCellId>,
    /// Wire capacitance per µm of estimated length, in fF/µm.
    pub wire_cap_per_um: f64,
    /// Linear wire delay per µm of estimated length, in ps/µm.
    pub wire_delay_per_um: f64,
    /// Quadratic wire delay term in ps/µm² (distributed-RC surrogate:
    /// Elmore delay grows with the square of unbuffered length, which is
    /// precisely why buffer insertion helps long nets).
    pub wire_delay_per_um2: f64,
}

impl Library {
    /// Creates an empty library.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cells: Vec::new(),
            by_name: HashMap::new(),
            wire_cap_per_um: 0.2,
            wire_delay_per_um: 0.05,
            wire_delay_per_um2: 0.0009,
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a characterized cell and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a cell with the same name already exists.
    pub fn add(&mut self, cell: LibCell) -> LibCellId {
        let id = LibCellId::new(self.cells.len());
        let prev = self.by_name.insert(cell.name.clone(), id);
        assert!(prev.is_none(), "duplicate library cell {}", cell.name);
        self.cells.push(cell);
        id
    }

    /// Looks a cell up by id.
    #[inline]
    pub fn cell(&self, id: LibCellId) -> &LibCell {
        &self.cells[id.index()]
    }

    /// Looks a cell up by variant name (`"NAND2_X2"`).
    pub fn find(&self, name: &str) -> Option<LibCellId> {
        self.by_name.get(name).copied()
    }

    /// Finds the variant of `function` at `drive`, if characterized.
    pub fn variant(&self, function: Function, drive: DriveStrength) -> Option<LibCellId> {
        self.find(&format!("{}_{}", function.short_name(), drive))
    }

    /// Number of characterized cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LibCellId, &LibCell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (LibCellId::new(i), c))
    }

    /// The upsized variant of `id` (same function, next drive), if any.
    pub fn upsized(&self, id: LibCellId) -> Option<LibCellId> {
        let c = self.cell(id);
        c.drive.upsize().and_then(|d| self.variant(c.function, d))
    }

    /// The downsized variant of `id` (same function, previous drive), if any.
    pub fn downsized(&self, id: LibCellId) -> Option<LibCellId> {
        let c = self.cell(id);
        c.drive.downsize().and_then(|d| self.variant(c.function, d))
    }

    /// A copy of this library with every *path delay* quantity scaled by
    /// `factor` — the cheap way to model a PVT corner (slow corner
    /// `factor > 1`, fast corner `factor < 1`). Cell delays, slews, and
    /// wire delays scale; setup/hold check windows deliberately do not
    /// (they are signoff margins, and keeping them fixed is what makes
    /// the fast corner hold-critical: the data path's positive hold
    /// margin shrinks by `factor` against an unscaled requirement).
    /// Capacitance, area, and leakage are corner-independent here.
    pub fn scale_delays(&self, factor: f64) -> Library {
        assert!(factor > 0.0, "delay scale must be positive");
        let mut scaled = self.clone();
        for cell in &mut scaled.cells {
            cell.intrinsic *= factor;
            cell.drive_res *= factor;
            cell.slew_intrinsic *= factor;
            cell.slew_res *= factor;
        }
        scaled.wire_delay_per_um *= factor;
        scaled.wire_delay_per_um2 *= factor;
        scaled
    }

    /// The standard library used throughout the reproduction: every
    /// characterized [`Function`] at drives X1–X8, plus port pseudo-cells.
    ///
    /// Characterization numbers are loosely modelled on a 45 nm educational
    /// PDK; the absolute values are unimportant, only that the sizing
    /// trade-offs (speed vs. area/leakage/cap) are realistic.
    pub fn standard() -> Self {
        let mut lib = Library::new("std45");
        // Port pseudo-cells: zero-delay anchors for primary I/O.
        lib.add(LibCell {
            name: "IN_PORT".to_owned(),
            function: Function::Input,
            drive: DriveStrength::X1,
            area: 0.0,
            leakage: 0.0,
            input_cap: 0.0,
            intrinsic: 0.0,
            drive_res: 0.0,
            slew_sens: 0.0,
            slew_intrinsic: 10.0,
            slew_res: 0.0,
            max_load: f64::INFINITY,
            setup: 0.0,
            hold: 0.0,
        });
        lib.add(LibCell {
            name: "OUT_PORT".to_owned(),
            function: Function::Output,
            drive: DriveStrength::X1,
            area: 0.0,
            leakage: 0.0,
            input_cap: 2.0,
            intrinsic: 0.0,
            drive_res: 0.0,
            slew_sens: 0.0,
            slew_intrinsic: 0.0,
            slew_res: 0.0,
            max_load: f64::INFINITY,
            setup: 0.0,
            hold: 0.0,
        });
        // (base intrinsic ps, base drive_res ps/fF, base cap fF, base area µm², base leak nW)
        let base: &[(Function, f64, f64, f64, f64, f64)] = &[
            (Function::Buf, 28.0, 5.2, 1.6, 1.06, 12.0),
            (Function::Inv, 16.0, 4.6, 1.4, 0.53, 8.0),
            (Function::Nand2, 22.0, 5.8, 1.7, 0.80, 14.0),
            (Function::Nor2, 26.0, 6.4, 1.8, 0.80, 15.0),
            (Function::And2, 34.0, 5.6, 1.7, 1.06, 18.0),
            (Function::Or2, 36.0, 5.9, 1.8, 1.06, 19.0),
            (Function::Xor2, 48.0, 7.2, 2.2, 1.60, 26.0),
            (Function::Mux2, 44.0, 6.8, 2.0, 1.86, 24.0),
            (Function::Aoi21, 30.0, 6.6, 1.9, 1.33, 20.0),
            (Function::Dff, 95.0, 6.0, 1.8, 4.52, 60.0),
            (Function::ClkBuf, 24.0, 4.0, 2.2, 1.33, 16.0),
        ];
        for &(function, intrinsic, res, cap, area, leak) in base {
            for &drive in DriveStrength::ladder() {
                let f = drive.factor();
                lib.add(LibCell {
                    name: format!("{}_{}", function.short_name(), drive),
                    function,
                    drive,
                    area: area * (0.6 + 0.4 * f),
                    leakage: leak * f,
                    input_cap: cap * (0.7 + 0.3 * f),
                    // Larger drives are marginally faster unloaded and much
                    // faster under load.
                    intrinsic: intrinsic * (1.0 - 0.03 * (f - 1.0)).max(0.75),
                    drive_res: res / f,
                    slew_sens: 0.04,
                    slew_intrinsic: 18.0 / f.sqrt(),
                    slew_res: 3.0 / f,
                    max_load: 24.0 * f,
                    setup: if function == Function::Dff { 32.0 } else { 0.0 },
                    hold: if function == Function::Dff { 8.0 } else { 0.0 },
                });
            }
        }
        lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_has_all_variants() {
        let lib = Library::standard();
        for &f in Function::all_characterized() {
            for &d in DriveStrength::ladder() {
                let id = lib
                    .variant(f, d)
                    .unwrap_or_else(|| panic!("missing {f}_{d}"));
                assert_eq!(lib.cell(id).function, f);
                assert_eq!(lib.cell(id).drive, d);
            }
        }
        // 2 ports + 11 functions × 4 drives
        assert_eq!(lib.len(), 2 + 11 * 4);
    }

    #[test]
    fn delay_decreases_with_drive_under_load() {
        let lib = Library::standard();
        let x1 = lib.cell(lib.variant(Function::Nand2, DriveStrength::X1).unwrap());
        let x4 = lib.cell(lib.variant(Function::Nand2, DriveStrength::X4).unwrap());
        let load = 12.0;
        let slew = 20.0;
        assert!(x4.delay(load, slew) < x1.delay(load, slew));
        // ...while costing more area and leakage.
        assert!(x4.area > x1.area);
        assert!(x4.leakage > x1.leakage);
        assert!(x4.input_cap > x1.input_cap);
    }

    #[test]
    fn slew_model_monotone_in_load() {
        let lib = Library::standard();
        let c = lib.cell(lib.variant(Function::Buf, DriveStrength::X2).unwrap());
        assert!(c.output_slew(10.0) > c.output_slew(1.0));
    }

    #[test]
    fn upsize_downsize_ladder() {
        let lib = Library::standard();
        let x1 = lib.variant(Function::Inv, DriveStrength::X1).unwrap();
        let x2 = lib.upsized(x1).unwrap();
        assert_eq!(lib.cell(x2).drive, DriveStrength::X2);
        assert_eq!(lib.downsized(x2), Some(x1));
        assert_eq!(lib.downsized(x1), None);
        let x8 = lib.variant(Function::Inv, DriveStrength::X8).unwrap();
        assert_eq!(lib.upsized(x8), None);
    }

    #[test]
    fn drive_strength_ladder_is_ordered() {
        let ladder = DriveStrength::ladder();
        for pair in ladder.windows(2) {
            assert!(pair[0] < pair[1]);
            assert!(pair[0].factor() < pair[1].factor());
            assert_eq!(pair[0].upsize(), Some(pair[1]));
            assert_eq!(pair[1].downsize(), Some(pair[0]));
        }
    }

    #[test]
    fn arity_matches_function() {
        assert_eq!(Function::Input.arity(), 0);
        assert_eq!(Function::Inv.arity(), 1);
        assert_eq!(Function::Nand2.arity(), 2);
        assert_eq!(Function::Mux2.arity(), 3);
        assert_eq!(Function::Dff.arity(), 2);
        assert!(Function::Dff.is_sequential());
        assert!(!Function::Dff.is_combinational());
        assert!(Function::Nand2.is_combinational());
        assert!(Function::Input.is_port());
        assert!(!Function::ClkBuf.is_port());
    }

    #[test]
    fn overload_detection() {
        let lib = Library::standard();
        let c = lib.cell(lib.variant(Function::Inv, DriveStrength::X1).unwrap());
        assert!(c.overloaded(c.max_load + 1.0));
        assert!(!c.overloaded(c.max_load));
    }

    #[test]
    fn ff_has_setup_and_hold() {
        let lib = Library::standard();
        let ff = lib.cell(lib.variant(Function::Dff, DriveStrength::X1).unwrap());
        assert!(ff.setup > 0.0);
        assert!(ff.hold > 0.0);
        assert!(ff.hold < ff.setup);
        let inv = lib.cell(lib.variant(Function::Inv, DriveStrength::X1).unwrap());
        assert_eq!(inv.setup, 0.0);
    }

    #[test]
    #[should_panic(expected = "duplicate library cell")]
    fn duplicate_names_panic() {
        let mut lib = Library::standard();
        lib.add(LibCell {
            name: "INV_X1".to_owned(),
            function: Function::Inv,
            drive: DriveStrength::X1,
            area: 1.0,
            leakage: 1.0,
            input_cap: 1.0,
            intrinsic: 1.0,
            drive_res: 1.0,
            slew_sens: 0.0,
            slew_intrinsic: 1.0,
            slew_res: 0.0,
            max_load: 1.0,
            setup: 0.0,
            hold: 0.0,
        });
    }

    #[test]
    fn find_by_name() {
        let lib = Library::standard();
        assert!(lib.find("NAND2_X4").is_some());
        assert!(lib.find("NAND3_X4").is_none());
        assert!(!lib.is_empty());
        assert_eq!(lib.name(), "std45");
        assert_eq!(lib.iter().count(), lib.len());
    }
}
