//! Collected-issues netlist lint.
//!
//! Every structural check the strict loaders enforce fail-fast is also
//! available here as an *accumulating* pass: one [`LintReport`] listing
//! every problem found — duplicate names, undriven / multiply-driven
//! nets, dangling ports, unconnected pins, combinational cycles,
//! unresolved cell references, non-finite attribute values — each as a
//! typed [`LintIssue`] with a severity, a stable code, and (when the
//! netlist came from a text source) a line/column [`SrcSpan`].
//!
//! The parsers (`format`, `verilog`, and the EDIF importer in
//! `crates/ingest`) emit their diagnostics through this module, so the
//! fail-fast errors and the collected report are one implementation:
//! a strict parse is "lint, then surface the first error-severity
//! issue".
//!
//! # Issue catalog
//!
//! | code    | check                       | severity |
//! |---------|-----------------------------|----------|
//! | `NL001` | duplicate cell name         | error    |
//! | `NL002` | duplicate net name          | error    |
//! | `NL003` | unresolved cell reference   | error    |
//! | `NL004` | undriven net with sinks     | error    |
//! | `NL005` | multiply-driven net         | error    |
//! | `NL006` | dangling port               | warning  |
//! | `NL007` | unconnected input pin       | error    |
//! | `NL008` | combinational cycle         | error    |
//! | `NL009` | unclocked flip-flop         | error    |
//! | `NL010` | non-finite attribute value  | error    |
//! | `NL011` | malformed syntax            | error    |
//! | `NL012` | unsupported library         | error    |

use crate::cell::CellRole;
use crate::ids::PinIndex;
use crate::netlist::Netlist;
use std::collections::HashMap;
use std::fmt;

/// Stable lint issue codes (see the module-level catalog).
pub mod codes {
    /// Duplicate cell name.
    pub const DUPLICATE_CELL: &str = "NL001";
    /// Duplicate net name.
    pub const DUPLICATE_NET: &str = "NL002";
    /// Reference to a cell, net, or library cell that does not exist.
    pub const UNRESOLVED_REF: &str = "NL003";
    /// A net with sinks but no driver.
    pub const UNDRIVEN_NET: &str = "NL004";
    /// More than one output pin claims to drive one net.
    pub const MULTIPLY_DRIVEN_NET: &str = "NL005";
    /// A port cell wired to nothing.
    pub const DANGLING_PORT: &str = "NL006";
    /// A gate input pin with no net, or a pin/net cross-reference
    /// mismatch.
    pub const UNCONNECTED_PIN: &str = "NL007";
    /// A cycle in the combinational timing graph.
    pub const COMBINATIONAL_CYCLE: &str = "NL008";
    /// A flip-flop whose CK pin does not trace to a clock source.
    pub const UNCLOCKED_FF: &str = "NL009";
    /// A numeric attribute (placement coordinate, characterization
    /// value) that is NaN or infinite.
    pub const NON_FINITE_ATTR: &str = "NL010";
    /// Syntactically malformed source.
    pub const MALFORMED: &str = "NL011";
    /// The source references a library this build cannot re-read.
    pub const UNSUPPORTED_LIBRARY: &str = "NL012";
}

/// How bad an issue is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but analyzable (e.g. a dangling port).
    Warning,
    /// The netlist cannot be timed as written.
    Error,
}

impl Severity {
    /// Lower-case label (`"warning"` / `"error"`), stable for wire
    /// formats and metrics.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A 1-based line/column position in the source text an object came
/// from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SrcSpan {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl SrcSpan {
    /// Builds a span from 1-based line and column.
    pub fn new(line: u32, col: u32) -> Self {
        Self { line, col }
    }
}

impl fmt::Display for SrcSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct LintIssue {
    /// Error or warning.
    pub severity: Severity,
    /// Stable code from [`codes`].
    pub code: &'static str,
    /// Human description naming the offending object.
    pub message: String,
    /// Source position, when the object came from a text source.
    pub span: Option<SrcSpan>,
}

impl fmt::Display for LintIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(s) => write!(f, "{s}: {} [{}] {}", self.severity, self.code, self.message),
            None => write!(f, "{} [{}] {}", self.severity, self.code, self.message),
        }
    }
}

/// Accumulated findings of one lint pass, in discovery order (source
/// order for parse issues, then id order for structural issues), so a
/// report over the same input is byte-stable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    /// The findings.
    pub issues: Vec<LintIssue>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an error-severity issue.
    pub fn error(&mut self, code: &'static str, span: Option<SrcSpan>, message: impl Into<String>) {
        self.issues.push(LintIssue {
            severity: Severity::Error,
            code,
            message: message.into(),
            span,
        });
    }

    /// Appends a warning-severity issue.
    pub fn warning(
        &mut self,
        code: &'static str,
        span: Option<SrcSpan>,
        message: impl Into<String>,
    ) {
        self.issues.push(LintIssue {
            severity: Severity::Warning,
            code,
            message: message.into(),
            span,
        });
    }

    /// Number of error-severity issues.
    pub fn num_errors(&self) -> usize {
        self.issues
            .iter()
            .filter(|i| i.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity issues.
    pub fn num_warnings(&self) -> usize {
        self.issues
            .iter()
            .filter(|i| i.severity == Severity::Warning)
            .count()
    }

    /// True when no issue of any severity was found.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// The first error-severity issue, if any — what a fail-fast loader
    /// surfaces.
    pub fn first_error(&self) -> Option<&LintIssue> {
        self.issues.iter().find(|i| i.severity == Severity::Error)
    }

    /// Appends every issue of `other`.
    pub fn merge(&mut self, other: LintReport) {
        self.issues.extend(other.issues);
    }

    /// Multi-line human rendering: one issue per line, then a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for issue in &self.issues {
            out.push_str(&issue.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.num_errors(),
            self.num_warnings()
        ));
        out
    }
}

/// Source positions for named objects, kept by importers so structural
/// findings on the built netlist can point back into the source text.
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    /// Cell name → defining span.
    pub cells: HashMap<String, SrcSpan>,
    /// Net name → defining span.
    pub nets: HashMap<String, SrcSpan>,
}

impl SourceMap {
    /// An empty map (structural issues carry no span).
    pub fn new() -> Self {
        Self::default()
    }

    fn cell(&self, name: &str) -> Option<SrcSpan> {
        self.cells.get(name).copied()
    }

    fn net(&self, name: &str) -> Option<SrcSpan> {
        self.nets.get(name).copied()
    }
}

/// Runs every structural check on a built netlist, accumulating all
/// findings instead of stopping at the first (contrast
/// [`Netlist::validate`], which is this pass surfaced fail-fast).
pub fn lint_netlist(netlist: &Netlist) -> LintReport {
    lint_netlist_spanned(netlist, &SourceMap::new())
}

/// [`lint_netlist`] with a [`SourceMap`] attaching line/col spans to the
/// findings (importers keep one while elaborating).
pub fn lint_netlist_spanned(netlist: &Netlist, sources: &SourceMap) -> LintReport {
    let mut report = LintReport::new();

    // Per-cell pin checks: every declared input wired, cross-references
    // consistent, coordinates finite.
    for (id, cell) in netlist.cells() {
        let span = sources.cell(&cell.name);
        if !cell.loc.x.is_finite() || !cell.loc.y.is_finite() {
            report.error(
                codes::NON_FINITE_ATTR,
                span,
                format!(
                    "cell `{}` has a non-finite placement ({}, {})",
                    cell.name, cell.loc.x, cell.loc.y
                ),
            );
        }
        for (pin, net) in cell.inputs.iter().enumerate() {
            let Some(net) = net else {
                report.error(
                    codes::UNCONNECTED_PIN,
                    span,
                    format!("cell `{}` input pin {pin} is unconnected", cell.name),
                );
                continue;
            };
            let listed = netlist
                .net(*net)
                .sinks
                .iter()
                .any(|&(c, p)| c == id && p.index() == pin);
            if !listed {
                report.error(
                    codes::UNCONNECTED_PIN,
                    span,
                    format!(
                        "cell `{}` pin {pin} reads net `{}`, which does not list it as a sink",
                        cell.name,
                        netlist.net(*net).name
                    ),
                );
            }
        }
        let lib = netlist.library().cell(cell.lib_cell);
        if lib.function.has_output() && cell.output.is_none() && !cell.inputs.is_empty() {
            report.error(
                codes::UNCONNECTED_PIN,
                span,
                format!("cell `{}` drives no net (dead logic)", cell.name),
            );
        }
    }

    // Per-net checks: drivers present, unique, and cross-referenced.
    let mut outputs_on_net: HashMap<crate::ids::NetId, Vec<&str>> = HashMap::new();
    for (_, cell) in netlist.cells() {
        if let Some(out) = cell.output {
            outputs_on_net.entry(out).or_default().push(&cell.name);
        }
    }
    for (id, net) in netlist.nets() {
        let span = sources.net(&net.name);
        let drivers = outputs_on_net.get(&id).map(Vec::as_slice).unwrap_or(&[]);
        if drivers.len() > 1 {
            report.error(
                codes::MULTIPLY_DRIVEN_NET,
                span,
                format!(
                    "net `{}` is driven by {} outputs ({})",
                    net.name,
                    drivers.len(),
                    drivers.join(", ")
                ),
            );
        }
        match net.driver {
            None if !net.sinks.is_empty() => {
                report.error(
                    codes::UNDRIVEN_NET,
                    span,
                    format!(
                        "net `{}` has {} sink(s) but no driver",
                        net.name,
                        net.sinks.len()
                    ),
                );
            }
            Some(d) if netlist.cell(d).output != Some(id) => {
                report.error(
                    codes::MULTIPLY_DRIVEN_NET,
                    span,
                    format!(
                        "net `{}` names driver `{}`, whose output pin drives a different net",
                        net.name,
                        netlist.cell(d).name
                    ),
                );
            }
            _ => {}
        }
    }

    // Port connectivity: an input port whose net goes nowhere, or an
    // output port reading nothing, is dangling.
    for (_, cell) in netlist.cells() {
        let span = sources.cell(&cell.name);
        match cell.role {
            CellRole::Input | CellRole::ClockSource => {
                let unused = cell
                    .output
                    .map(|n| netlist.net(n).sinks.is_empty())
                    .unwrap_or(true);
                if unused {
                    report.warning(
                        codes::DANGLING_PORT,
                        span,
                        format!("input port `{}` drives nothing", cell.name),
                    );
                }
            }
            CellRole::Output if cell.inputs.first().copied().flatten().is_none() => {
                report.warning(
                    codes::DANGLING_PORT,
                    span,
                    format!("output port `{}` is not driven", cell.name),
                );
            }
            _ => {}
        }
    }

    // Combinational cycles: same Kahn pass `Netlist::topo_order` runs,
    // but reporting every blocked cell instead of the first.
    for id in netlist.cycle_members() {
        let cell = netlist.cell(id);
        report.error(
            codes::COMBINATIONAL_CYCLE,
            sources.cell(&cell.name),
            format!("combinational cycle through cell `{}`", cell.name),
        );
    }

    // Clocking: every flip-flop's CK pin traces to a clock source.
    for (_, cell) in netlist.cells() {
        if cell.role != CellRole::Sequential {
            continue;
        }
        if !ck_traces_to_clock(netlist, cell) {
            report.error(
                codes::UNCLOCKED_FF,
                sources.cell(&cell.name),
                format!(
                    "flip-flop `{}` CK pin does not trace to a clock source",
                    cell.name
                ),
            );
        }
    }

    report
}

fn ck_traces_to_clock(netlist: &Netlist, cell: &crate::cell::Cell) -> bool {
    let mut cur = cell.inputs.get(PinIndex::FF_CK.index()).copied().flatten();
    let mut hops = 0usize;
    loop {
        let Some(net) = cur else { return false };
        let Some(driver) = netlist.net(net).driver else {
            return false;
        };
        let d = netlist.cell(driver);
        match d.role {
            CellRole::ClockSource => return true,
            CellRole::ClockBuffer => cur = d.inputs.first().copied().flatten(),
            _ => return false,
        }
        hops += 1;
        if hops > netlist.num_cells() {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::GeneratorConfig;
    use crate::library::Library;
    use crate::netlist::NetlistBuilder;
    use crate::point::Point;

    #[test]
    fn generated_designs_lint_clean() {
        for seed in [1, 7, 33] {
            let n = GeneratorConfig::small(seed).generate();
            let report = lint_netlist(&n);
            assert!(report.is_clean(), "seed {seed}: {}", report.render_text());
        }
    }

    #[test]
    fn dangling_input_port_is_a_warning() {
        let mut b = NetlistBuilder::new("t", Library::standard());
        let clk = b.add_clock_port("clk", Point::ORIGIN);
        let d = b.add_input("d0", Point::ORIGIN);
        let unused = b.add_input("nc", Point::ORIGIN);
        let _ = unused;
        let ff = b
            .add_flip_flop("ff0", "DFF_X1", Point::new(5.0, 0.0), clk)
            .unwrap();
        b.connect_flip_flop_d_net(ff, d);
        let q = b.cell_output(ff);
        b.add_output("y", Point::new(10.0, 0.0), q).unwrap();
        let n = b.build().unwrap();
        let report = lint_netlist(&n);
        assert_eq!(report.num_errors(), 0, "{}", report.render_text());
        assert_eq!(report.num_warnings(), 1);
        assert_eq!(report.issues[0].code, codes::DANGLING_PORT);
        assert!(report.issues[0].message.contains("nc"));
    }

    #[test]
    fn unconnected_pin_and_unclocked_ff_accumulate_together() {
        // build_unchecked lets both defects coexist; lint reports all.
        let mut b = NetlistBuilder::new("t", Library::standard());
        let clk = b.add_clock_port("clk", Point::ORIGIN);
        let _ = clk;
        let g = b.add_gate_unwired("u0", "INV_X1", Point::ORIGIN).unwrap();
        let _ = g; // input pin 0 left unconnected
        let n = b.build_unchecked();
        let report = lint_netlist(&n);
        assert!(report
            .issues
            .iter()
            .any(|i| i.code == codes::UNCONNECTED_PIN && i.message.contains("u0")));
        // The clock port drives nothing → dangling warning too.
        assert!(report
            .issues
            .iter()
            .any(|i| i.code == codes::DANGLING_PORT && i.message.contains("clk")));
        assert!(report.num_errors() >= 1);
    }

    #[test]
    fn report_renders_spans_and_summary() {
        let mut r = LintReport::new();
        r.error(
            codes::DUPLICATE_CELL,
            Some(SrcSpan::new(4, 6)),
            "duplicate cell `a`",
        );
        r.warning(codes::DANGLING_PORT, None, "input port `nc` drives nothing");
        let text = r.render_text();
        assert!(
            text.contains("4:6: error [NL001] duplicate cell `a`"),
            "{text}"
        );
        assert!(text.contains("warning [NL006]"), "{text}");
        assert!(text.ends_with("1 error(s), 1 warning(s)\n"), "{text}");
        assert_eq!(r.first_error().unwrap().code, codes::DUPLICATE_CELL);
    }
}
