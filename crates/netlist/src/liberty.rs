//! Liberty (`.lib`) cell-library format — a recognizable subset.
//!
//! Characterized libraries ship as Liberty files; this module reads and
//! writes the subset this crate's [`Library`] models, in conventional
//! Liberty syntax (brace groups, `attribute : value;` pairs):
//!
//! ```text
//! library (std45) {
//!   wire_load ("estimate") {
//!     cap_per_um : 0.2;
//!     delay_per_um : 0.05;
//!     delay_per_um2 : 0.0009;
//!   }
//!   cell (INV_X1) {
//!     function : inv;
//!     drive_strength : X1;
//!     area : 0.74;
//!     cell_leakage_power : 8;
//!     pin_capacitance : 1.54;
//!     max_capacitance : 24;
//!     timing () {
//!       intrinsic : 15.52;
//!       resistance : 4.6;
//!       slew_sensitivity : 0.04;
//!       slew_intrinsic : 18;
//!       slew_resistance : 3;
//!     }
//!   }
//!   cell (DFF_X1) {
//!     ...
//!     timing_check () {
//!       setup : 32;
//!       hold : 8;
//!     }
//!   }
//! }
//! ```
//!
//! The `function` attribute names one of this crate's [`Function`]s in
//! lower case (`inv`, `nand2`, `dff`, `clkbuf`, …).

use crate::library::{DriveStrength, Function, LibCell, Library};
use std::error::Error;
use std::fmt;

/// Errors from [`parse_liberty`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseLibertyError {
    /// Lexical/syntactic problem with a description.
    Syntax(String),
    /// A cell is missing a required attribute.
    MissingAttribute {
        /// Cell name.
        cell: String,
        /// Attribute name.
        attribute: &'static str,
    },
    /// An attribute value could not be interpreted.
    BadValue {
        /// Attribute name.
        attribute: String,
        /// Offending value.
        value: String,
    },
}

impl fmt::Display for ParseLibertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseLibertyError::Syntax(m) => write!(f, "syntax error: {m}"),
            ParseLibertyError::MissingAttribute { cell, attribute } => {
                write!(f, "cell `{cell}` is missing `{attribute}`")
            }
            ParseLibertyError::BadValue { attribute, value } => {
                write!(f, "bad value `{value}` for `{attribute}`")
            }
        }
    }
}

impl Error for ParseLibertyError {}

/// A parsed Liberty group: `name (args) { attributes; subgroups }`.
#[derive(Debug, Clone)]
struct Group {
    name: String,
    args: Vec<String>,
    attributes: Vec<(String, String)>,
    subgroups: Vec<Group>,
}

impl Group {
    fn attr(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn attr_f64(&self, key: &str) -> Result<Option<f64>, ParseLibertyError> {
        match self.attr(key) {
            None => Ok(None),
            // Reject non-finite values: an unbounded attribute (e.g.
            // max_load) is expressed by omitting it, never by `inf`.
            Some(v) => v
                .parse()
                .ok()
                .filter(|x: &f64| x.is_finite())
                .map(Some)
                .ok_or_else(|| ParseLibertyError::BadValue {
                    attribute: key.to_owned(),
                    value: v.to_owned(),
                }),
        }
    }

    fn subgroup(&self, name: &str) -> Option<&Group> {
        self.subgroups.iter().find(|g| g.name == name)
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            // /* ... */ comments
            if self.pos + 1 < self.src.len()
                && self.src[self.pos] == b'/'
                && self.src[self.pos + 1] == b'*'
            {
                self.pos += 2;
                while self.pos + 1 < self.src.len()
                    && !(self.src[self.pos] == b'*' && self.src[self.pos + 1] == b'/')
                {
                    self.pos += 1;
                }
                self.pos = (self.pos + 2).min(self.src.len());
                continue;
            }
            break;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    /// Reads an identifier / number / quoted string token.
    fn token(&mut self) -> Result<String, ParseLibertyError> {
        self.skip_ws();
        let start = self.pos;
        if self.src.get(self.pos) == Some(&b'"') {
            self.pos += 1;
            let s = self.pos;
            while self.pos < self.src.len() && self.src[self.pos] != b'"' {
                self.pos += 1;
            }
            let out = String::from_utf8_lossy(&self.src[s..self.pos]).into_owned();
            self.pos += 1;
            return Ok(out);
        }
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'.' | b'-' | b'+') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(ParseLibertyError::Syntax(format!(
                "expected a token at byte {start}"
            )));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }
}

/// Parses one group starting at `name`.
fn parse_group(lex: &mut Lexer<'_>) -> Result<Group, ParseLibertyError> {
    let name = lex.token()?;
    // (args)
    if lex.peek() != Some(b'(') {
        return Err(ParseLibertyError::Syntax(format!(
            "group `{name}` missing `(`"
        )));
    }
    lex.bump();
    let mut args = Vec::new();
    loop {
        match lex.peek() {
            Some(b')') => {
                lex.bump();
                break;
            }
            Some(b',') => {
                lex.bump();
            }
            Some(_) => args.push(lex.token()?),
            None => {
                return Err(ParseLibertyError::Syntax(format!(
                    "unterminated argument list in `{name}`"
                )))
            }
        }
    }
    if lex.peek() != Some(b'{') {
        return Err(ParseLibertyError::Syntax(format!(
            "group `{name}` missing `{{`"
        )));
    }
    lex.bump();
    let mut attributes = Vec::new();
    let mut subgroups = Vec::new();
    loop {
        match lex.peek() {
            Some(b'}') => {
                lex.bump();
                break;
            }
            None => {
                return Err(ParseLibertyError::Syntax(format!(
                    "unterminated group `{name}`"
                )))
            }
            Some(_) => {
                let key = lex.token()?;
                match lex.peek() {
                    Some(b':') => {
                        lex.bump();
                        let value = lex.token()?;
                        if lex.peek() == Some(b';') {
                            lex.bump();
                        }
                        attributes.push((key, value));
                    }
                    Some(b'(') => {
                        // Re-parse as a subgroup: rewind is awkward, so
                        // inline the group parse with the known name.
                        lex.bump();
                        let mut sub_args = Vec::new();
                        loop {
                            match lex.peek() {
                                Some(b')') => {
                                    lex.bump();
                                    break;
                                }
                                Some(b',') => {
                                    lex.bump();
                                }
                                Some(_) => sub_args.push(lex.token()?),
                                None => {
                                    return Err(ParseLibertyError::Syntax(format!(
                                        "unterminated argument list in `{key}`"
                                    )))
                                }
                            }
                        }
                        if lex.peek() != Some(b'{') {
                            return Err(ParseLibertyError::Syntax(format!(
                                "group `{key}` missing `{{`"
                            )));
                        }
                        lex.bump();
                        let mut sub = Group {
                            name: key,
                            args: sub_args,
                            attributes: Vec::new(),
                            subgroups: Vec::new(),
                        };
                        parse_group_body(lex, &mut sub)?;
                        subgroups.push(sub);
                    }
                    other => {
                        return Err(ParseLibertyError::Syntax(format!(
                            "after `{key}`: expected `:` or `(`, found {other:?}"
                        )))
                    }
                }
            }
        }
    }
    Ok(Group {
        name,
        args,
        attributes,
        subgroups,
    })
}

/// Parses attributes/subgroups until the closing `}` (the `{` has been
/// consumed).
fn parse_group_body(lex: &mut Lexer<'_>, group: &mut Group) -> Result<(), ParseLibertyError> {
    loop {
        match lex.peek() {
            Some(b'}') => {
                lex.bump();
                return Ok(());
            }
            None => {
                return Err(ParseLibertyError::Syntax(format!(
                    "unterminated group `{}`",
                    group.name
                )))
            }
            Some(_) => {
                let key = lex.token()?;
                match lex.peek() {
                    Some(b':') => {
                        lex.bump();
                        let value = lex.token()?;
                        if lex.peek() == Some(b';') {
                            lex.bump();
                        }
                        group.attributes.push((key, value));
                    }
                    Some(b'(') => {
                        lex.bump();
                        let mut sub_args = Vec::new();
                        loop {
                            match lex.peek() {
                                Some(b')') => {
                                    lex.bump();
                                    break;
                                }
                                Some(b',') => {
                                    lex.bump();
                                }
                                Some(_) => sub_args.push(lex.token()?),
                                None => {
                                    return Err(ParseLibertyError::Syntax(format!(
                                        "unterminated argument list in `{key}`"
                                    )))
                                }
                            }
                        }
                        if lex.peek() != Some(b'{') {
                            return Err(ParseLibertyError::Syntax(format!(
                                "group `{key}` missing `{{`"
                            )));
                        }
                        lex.bump();
                        let mut sub = Group {
                            name: key,
                            args: sub_args,
                            attributes: Vec::new(),
                            subgroups: Vec::new(),
                        };
                        parse_group_body(lex, &mut sub)?;
                        group.subgroups.push(sub);
                    }
                    other => {
                        return Err(ParseLibertyError::Syntax(format!(
                            "after `{key}`: expected `:` or `(`, found {other:?}"
                        )))
                    }
                }
            }
        }
    }
}

fn parse_function(name: &str) -> Option<Function> {
    Some(match name {
        "input" => Function::Input,
        "output" => Function::Output,
        "buf" => Function::Buf,
        "inv" => Function::Inv,
        "nand2" => Function::Nand2,
        "nor2" => Function::Nor2,
        "and2" => Function::And2,
        "or2" => Function::Or2,
        "xor2" => Function::Xor2,
        "mux2" => Function::Mux2,
        "aoi21" => Function::Aoi21,
        "dff" => Function::Dff,
        "clkbuf" => Function::ClkBuf,
        _ => return None,
    })
}

fn function_keyword(f: Function) -> &'static str {
    match f {
        Function::Input => "input",
        Function::Output => "output",
        Function::Buf => "buf",
        Function::Inv => "inv",
        Function::Nand2 => "nand2",
        Function::Nor2 => "nor2",
        Function::And2 => "and2",
        Function::Or2 => "or2",
        Function::Xor2 => "xor2",
        Function::Mux2 => "mux2",
        Function::Aoi21 => "aoi21",
        Function::Dff => "dff",
        Function::ClkBuf => "clkbuf",
    }
}

fn parse_drive(name: &str) -> Option<DriveStrength> {
    Some(match name {
        "X1" => DriveStrength::X1,
        "X2" => DriveStrength::X2,
        "X4" => DriveStrength::X4,
        "X8" => DriveStrength::X8,
        _ => return None,
    })
}

/// Parses a Liberty-subset file into a [`Library`].
///
/// # Errors
///
/// Returns [`ParseLibertyError`] on any syntax or semantic problem.
pub fn parse_liberty(src: &str) -> Result<Library, ParseLibertyError> {
    let mut lex = Lexer::new(src);
    let root = parse_group(&mut lex)?;
    if root.name != "library" {
        return Err(ParseLibertyError::Syntax(format!(
            "expected `library`, found `{}`",
            root.name
        )));
    }
    let lib_name = root
        .args
        .first()
        .cloned()
        .unwrap_or_else(|| "unnamed".to_owned());
    let mut library = Library::new(lib_name);

    if let Some(wire) = root.subgroup("wire_load") {
        if let Some(v) = wire.attr_f64("cap_per_um")? {
            library.wire_cap_per_um = v;
        }
        if let Some(v) = wire.attr_f64("delay_per_um")? {
            library.wire_delay_per_um = v;
        }
        if let Some(v) = wire.attr_f64("delay_per_um2")? {
            library.wire_delay_per_um2 = v;
        }
    }

    for cell in root.subgroups.iter().filter(|g| g.name == "cell") {
        let cell_name = cell
            .args
            .first()
            .cloned()
            .ok_or_else(|| ParseLibertyError::Syntax("cell without a name".to_owned()))?;
        let missing = |attribute: &'static str| ParseLibertyError::MissingAttribute {
            cell: cell_name.clone(),
            attribute,
        };
        let function_name = cell.attr("function").ok_or_else(|| missing("function"))?;
        let function =
            parse_function(function_name).ok_or_else(|| ParseLibertyError::BadValue {
                attribute: "function".to_owned(),
                value: function_name.to_owned(),
            })?;
        let drive_name = cell.attr("drive_strength").unwrap_or("X1");
        let drive = parse_drive(drive_name).ok_or_else(|| ParseLibertyError::BadValue {
            attribute: "drive_strength".to_owned(),
            value: drive_name.to_owned(),
        })?;
        let timing = cell.subgroup("timing");
        let check = cell.subgroup("timing_check");
        let get = |g: Option<&Group>, key: &str| -> Result<f64, ParseLibertyError> {
            match g {
                Some(g) => Ok(g.attr_f64(key)?.unwrap_or(0.0)),
                None => Ok(0.0),
            }
        };
        library.add(LibCell {
            name: cell_name.clone(),
            function,
            drive,
            area: cell.attr_f64("area")?.unwrap_or(0.0),
            leakage: cell.attr_f64("cell_leakage_power")?.unwrap_or(0.0),
            input_cap: cell.attr_f64("pin_capacitance")?.unwrap_or(0.0),
            max_load: cell.attr_f64("max_capacitance")?.unwrap_or(f64::INFINITY),
            intrinsic: get(timing, "intrinsic")?,
            drive_res: get(timing, "resistance")?,
            slew_sens: get(timing, "slew_sensitivity")?,
            slew_intrinsic: get(timing, "slew_intrinsic")?,
            slew_res: get(timing, "slew_resistance")?,
            setup: get(check, "setup")?,
            hold: get(check, "hold")?,
        });
    }
    Ok(library)
}

/// Writes a [`Library`] in the Liberty subset [`parse_liberty`] reads.
pub fn write_liberty(library: &Library) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "library ({}) {{", library.name());
    let _ = writeln!(out, "  wire_load (\"estimate\") {{");
    let _ = writeln!(out, "    cap_per_um : {};", library.wire_cap_per_um);
    let _ = writeln!(out, "    delay_per_um : {};", library.wire_delay_per_um);
    let _ = writeln!(out, "    delay_per_um2 : {};", library.wire_delay_per_um2);
    let _ = writeln!(out, "  }}");
    for (_, cell) in library.iter() {
        let _ = writeln!(out, "  cell ({}) {{", cell.name);
        let _ = writeln!(out, "    function : {};", function_keyword(cell.function));
        let _ = writeln!(out, "    drive_strength : {};", cell.drive);
        let _ = writeln!(out, "    area : {};", cell.area);
        let _ = writeln!(out, "    cell_leakage_power : {};", cell.leakage);
        let _ = writeln!(out, "    pin_capacitance : {};", cell.input_cap);
        if cell.max_load.is_finite() {
            let _ = writeln!(out, "    max_capacitance : {};", cell.max_load);
        }
        let _ = writeln!(out, "    timing () {{");
        let _ = writeln!(out, "      intrinsic : {};", cell.intrinsic);
        let _ = writeln!(out, "      resistance : {};", cell.drive_res);
        let _ = writeln!(out, "      slew_sensitivity : {};", cell.slew_sens);
        let _ = writeln!(out, "      slew_intrinsic : {};", cell.slew_intrinsic);
        let _ = writeln!(out, "      slew_resistance : {};", cell.slew_res);
        let _ = writeln!(out, "    }}");
        if cell.function == Function::Dff {
            let _ = writeln!(out, "    timing_check () {{");
            let _ = writeln!(out, "      setup : {};", cell.setup);
            let _ = writeln!(out, "      hold : {};", cell.hold);
            let _ = writeln!(out, "    }}");
        }
        let _ = writeln!(out, "  }}");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_standard_library() {
        let original = Library::standard();
        let text = write_liberty(&original);
        let parsed = parse_liberty(&text).unwrap();
        assert_eq!(parsed.name(), original.name());
        assert_eq!(parsed.len(), original.len());
        assert_eq!(parsed.wire_cap_per_um, original.wire_cap_per_um);
        for (_, cell) in original.iter() {
            let id = parsed.find(&cell.name).expect("cell survives");
            let p = parsed.cell(id);
            assert_eq!(p.function, cell.function, "{}", cell.name);
            assert_eq!(p.drive, cell.drive);
            assert_eq!(p.intrinsic, cell.intrinsic);
            assert_eq!(p.drive_res, cell.drive_res);
            assert_eq!(p.setup, cell.setup);
            assert_eq!(p.hold, cell.hold);
            assert_eq!(p.area, cell.area);
        }
    }

    #[test]
    fn rejects_non_finite_attribute_values() {
        for bad in ["nan", "inf", "-inf"] {
            let src = format!(
                "library (mini) {{\n  cell (INV_X1) {{\n    function : inv;\n    \
                 drive_strength : X1;\n    area : {bad};\n  }}\n}}\n"
            );
            let err = parse_liberty(&src).unwrap_err();
            assert!(
                matches!(err, ParseLibertyError::BadValue { .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn parses_hand_written_cell() {
        let src = r#"
library (mini) {
  /* a comment */
  wire_load ("estimate") { cap_per_um : 0.1; delay_per_um : 0.02; delay_per_um2 : 0.0005; }
  cell (INV_X1) {
    function : inv;
    drive_strength : X1;
    area : 0.7;
    cell_leakage_power : 8;
    pin_capacitance : 1.5;
    max_capacitance : 20;
    timing () { intrinsic : 15; resistance : 4.5; }
  }
}
"#;
        let lib = parse_liberty(src).unwrap();
        assert_eq!(lib.name(), "mini");
        assert_eq!(lib.wire_cap_per_um, 0.1);
        let inv = lib.cell(lib.find("INV_X1").unwrap());
        assert_eq!(inv.function, Function::Inv);
        assert_eq!(inv.intrinsic, 15.0);
        assert_eq!(inv.drive_res, 4.5);
        assert_eq!(inv.slew_sens, 0.0); // unspecified attributes default
        assert_eq!(inv.max_load, 20.0);
    }

    #[test]
    fn missing_function_is_an_error() {
        let src = "library (x) { cell (A) { area : 1; } }";
        assert!(matches!(
            parse_liberty(src),
            Err(ParseLibertyError::MissingAttribute {
                attribute: "function",
                ..
            })
        ));
    }

    #[test]
    fn bad_function_is_an_error() {
        let src = "library (x) { cell (A) { function : tribuf; } }";
        assert!(matches!(
            parse_liberty(src),
            Err(ParseLibertyError::BadValue { .. })
        ));
    }

    #[test]
    fn unterminated_group_is_an_error() {
        let src = "library (x) { cell (A) { function : inv; ";
        assert!(matches!(
            parse_liberty(src),
            Err(ParseLibertyError::Syntax(_))
        ));
    }

    #[test]
    fn top_group_must_be_library() {
        let src = "cell (x) { }";
        let err = parse_liberty(src).unwrap_err();
        assert!(err.to_string().contains("library"));
    }
}
