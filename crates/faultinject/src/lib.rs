//! Deterministic named failpoints, compiled out by default.
//!
//! A *failpoint* is a named hook (`faultinject::fire("solver.iter")`)
//! placed at a fault-prone site. In normal builds the hook compiles to an
//! inline no-op. When the crate is built with `--features failpoints` the
//! hook consults a process-wide registry and can be armed to inject a
//! fault the next time the site executes:
//!
//! - `panic` — unwind at the site (exercises crash isolation),
//! - `error` — make the site report a synthetic typed error,
//! - `nan`   — make the site produce a non-finite value (exercises
//!   numerical guardrails),
//! - `delay:MS` — sleep `MS` milliseconds before continuing (exercises
//!   timeouts).
//!
//! Failpoints are armed either from the environment at first use
//! (`MGBA_FAILPOINTS="solver.iter=nan;weights.write=error*1"`) or
//! programmatically via [`arm_spec`]. An action may carry a `*N` suffix:
//! it fires `N` times and then disarms itself, which lets a chaos test
//! inject exactly one panic and then assert recovery.
//!
//! The registry is global. Tests that arm failpoints must serialize: take
//! `exclusive()` (or use `scoped()`, which takes it for you and clears
//! the registry on drop — both exist only with the feature on) so
//! concurrently running tests never observe each other's armed faults.

use std::fmt;

/// What an armed failpoint injects at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Unwind (`panic!`) at the site.
    Panic,
    /// Make the site report a synthetic typed error.
    Error,
    /// Make the site produce a non-finite value.
    Nan,
    /// Sleep this many milliseconds, then continue normally.
    Delay(u64),
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Panic => f.write_str("panic"),
            Action::Error => f.write_str("error"),
            Action::Nan => f.write_str("nan"),
            Action::Delay(ms) => write!(f, "delay:{ms}"),
        }
    }
}

/// The fault a firing failpoint asks its site to manifest.
///
/// `Panic` and `Delay` never reach the site (they happen inside
/// [`fire`]); the site only has to handle "report an error" and "produce
/// a NaN".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Report a synthetic typed error.
    Error,
    /// Produce a non-finite value.
    Nan,
}

/// Parses a single `action[*count]` token (`panic`, `error*1`,
/// `delay:25`, ...). `count` of zero is rejected.
#[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
fn parse_action(token: &str) -> Result<(Action, Option<u64>), String> {
    let (action, count) = match token.split_once('*') {
        Some((a, n)) => {
            let n: u64 = n
                .parse()
                .map_err(|_| format!("bad failpoint count `{n}`"))?;
            if n == 0 {
                return Err("failpoint count must be >= 1".into());
            }
            (a, Some(n))
        }
        None => (token, None),
    };
    let action = match action {
        "panic" => Action::Panic,
        "error" => Action::Error,
        "nan" => Action::Nan,
        // Plain `off` is consumed by the spec parser before this point;
        // `off*N` is nonsense.
        "off" => return Err("`off` takes no `*N` count".into()),
        _ => match action.strip_prefix("delay:") {
            Some(ms) => Action::Delay(
                ms.parse()
                    .map_err(|_| format!("bad delay milliseconds `{ms}`"))?,
            ),
            None => {
                return Err(format!(
                    "unknown failpoint action `{action}` (want panic|error|nan|delay:MS|off)"
                ))
            }
        },
    };
    Ok((action, count))
}

#[cfg(feature = "failpoints")]
mod registry {
    use super::{parse_action, Action, Fault};
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    struct Armed {
        action: Action,
        /// `None` = fire forever; `Some(n)` = fire `n` more times.
        remaining: Option<u64>,
    }

    fn table() -> &'static Mutex<HashMap<String, Armed>> {
        static TABLE: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(spec) = std::env::var("MGBA_FAILPOINTS") {
                // Env arming is best-effort: a typo must not take the
                // process down before main() even runs.
                let _ = arm_into(&mut map, &spec);
            }
            Mutex::new(map)
        })
    }

    fn arm_into(map: &mut HashMap<String, Armed>, spec: &str) -> Result<usize, String> {
        let mut armed = 0;
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (name, token) = clause
                .split_once('=')
                .ok_or_else(|| format!("bad failpoint clause `{clause}` (want name=action)"))?;
            let (name, token) = (name.trim(), token.trim());
            if name.is_empty() {
                return Err(format!("empty failpoint name in `{clause}`"));
            }
            if token == "off" {
                map.remove(name);
                armed += 1;
                continue;
            }
            let (action, remaining) = parse_action(token)?;
            map.insert(name.to_string(), Armed { action, remaining });
            armed += 1;
        }
        Ok(armed)
    }

    pub fn arm_spec(spec: &str) -> Result<usize, String> {
        let mut map = table().lock().unwrap();
        arm_into(&mut map, spec)
    }

    pub fn clear() {
        table().lock().unwrap().clear();
    }

    pub fn armed_names() -> Vec<String> {
        let mut names: Vec<String> = table().lock().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    pub fn fire(name: &str) -> Option<Fault> {
        // Decide under the lock, act after releasing it: a panic while
        // holding the mutex would poison the registry for every later
        // request, defeating one-shot recovery tests.
        let action = {
            let mut map = table().lock().unwrap();
            let armed = map.get_mut(name)?;
            let action = armed.action;
            if let Some(n) = &mut armed.remaining {
                *n -= 1;
                if *n == 0 {
                    map.remove(name);
                }
            }
            action
        };
        match action {
            Action::Panic => panic!("failpoint `{name}`: injected panic"),
            Action::Error => Some(Fault::Error),
            Action::Nan => Some(Fault::Nan),
            Action::Delay(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                None
            }
        }
    }

    pub fn exclusive() -> MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Fires the failpoint `name`.
///
/// Returns `Some(fault)` when the site must manifest an injected fault
/// ([`Fault::Error`] or [`Fault::Nan`]); panics here when armed with
/// `panic`; sleeps and returns `None` for `delay`. With the `failpoints`
/// feature off this is an inline no-op returning `None`.
#[inline(always)]
pub fn fire(name: &str) -> Option<Fault> {
    #[cfg(feature = "failpoints")]
    {
        registry::fire(name)
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = name;
        None
    }
}

/// Arms failpoints from a spec string: `name=action[;name=action...]`
/// where `action` is `panic|error|nan|delay:MS`, optionally suffixed
/// `*N` to fire only `N` times, or `off` to disarm that name.
///
/// Returns the number of clauses applied, or an error when the spec is
/// malformed — or when the binary was built without `--features
/// failpoints`, so a chaos run against a production build fails loudly
/// instead of silently injecting nothing.
pub fn arm_spec(spec: &str) -> Result<usize, String> {
    #[cfg(feature = "failpoints")]
    {
        registry::arm_spec(spec)
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = spec;
        Err("failpoints support not compiled in (build with --features failpoints)".into())
    }
}

/// Disarms every failpoint. No-op when the feature is off.
pub fn clear() {
    #[cfg(feature = "failpoints")]
    registry::clear();
}

/// Sorted names of currently armed failpoints (empty when the feature is
/// off).
pub fn armed_names() -> Vec<String> {
    #[cfg(feature = "failpoints")]
    {
        registry::armed_names()
    }
    #[cfg(not(feature = "failpoints"))]
    {
        Vec::new()
    }
}

/// Whether failpoint support is compiled into this build.
pub const fn compiled_in() -> bool {
    cfg!(feature = "failpoints")
}

/// Serializes tests that arm failpoints. The registry is process-global,
/// so two tests arming concurrently (or one arming while another runs a
/// solver) would interfere; every arming test must hold this guard.
#[cfg(feature = "failpoints")]
pub fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    registry::exclusive()
}

/// RAII failpoint arming for tests: takes the [`exclusive`] lock, clears
/// any stale state, applies `spec`, and clears again on drop.
#[cfg(feature = "failpoints")]
pub struct Scoped {
    _guard: std::sync::MutexGuard<'static, ()>,
}

#[cfg(feature = "failpoints")]
impl Drop for Scoped {
    fn drop(&mut self) {
        clear();
    }
}

/// Arms `spec` under the test lock; disarms everything when the returned
/// guard drops. Panics on a malformed spec (test-only convenience).
#[cfg(feature = "failpoints")]
pub fn scoped(spec: &str) -> Scoped {
    let guard = exclusive();
    clear();
    arm_spec(spec).expect("valid failpoint spec");
    Scoped { _guard: guard }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parser_rejects_garbage() {
        for bad in [
            "no-equals",
            "x=explode",
            "x=delay:abc",
            "x=panic*0",
            "x=panic*many",
            "=panic",
        ] {
            assert!(parse_bad(bad), "`{bad}` should be rejected");
        }
    }

    fn parse_bad(spec: &str) -> bool {
        // Route through the public API when compiled in; otherwise the
        // pure parser.
        #[cfg(feature = "failpoints")]
        {
            let _g = exclusive();
            clear();
            let bad = arm_spec(spec).is_err();
            clear();
            bad
        }
        #[cfg(not(feature = "failpoints"))]
        {
            spec.split_once('=')
                .map(|(n, t)| n.is_empty() || parse_action(t).is_err())
                .unwrap_or(true)
        }
    }

    #[test]
    fn action_parser_accepts_catalog() {
        assert_eq!(parse_action("panic").unwrap(), (Action::Panic, None));
        assert_eq!(parse_action("error*3").unwrap(), (Action::Error, Some(3)));
        assert_eq!(parse_action("nan").unwrap(), (Action::Nan, None));
        assert_eq!(parse_action("delay:25").unwrap(), (Action::Delay(25), None));
    }

    #[cfg(not(feature = "failpoints"))]
    #[test]
    fn disabled_build_is_inert() {
        assert!(!compiled_in());
        assert_eq!(fire("anything"), None);
        assert!(arm_spec("anything=panic").is_err());
        assert!(armed_names().is_empty());
    }

    #[cfg(feature = "failpoints")]
    mod armed {
        use super::super::*;

        #[test]
        fn error_and_nan_fire_until_disarmed() {
            let _s = scoped("a=error;b=nan");
            assert_eq!(fire("a"), Some(Fault::Error));
            assert_eq!(fire("a"), Some(Fault::Error));
            assert_eq!(fire("b"), Some(Fault::Nan));
            assert_eq!(fire("unarmed"), None);
            arm_spec("a=off").unwrap();
            assert_eq!(fire("a"), None);
        }

        #[test]
        fn counted_faults_self_disarm() {
            let _s = scoped("once=error*1;twice=nan*2");
            assert_eq!(fire("once"), Some(Fault::Error));
            assert_eq!(fire("once"), None);
            assert_eq!(fire("twice"), Some(Fault::Nan));
            assert_eq!(fire("twice"), Some(Fault::Nan));
            assert_eq!(fire("twice"), None);
            assert!(armed_names().is_empty());
        }

        #[test]
        fn panic_action_unwinds_and_registry_survives() {
            let _s = scoped("boom=panic*1");
            let caught = std::panic::catch_unwind(|| fire("boom"));
            assert!(caught.is_err());
            // The one-shot decremented before unwinding and the mutex is
            // not poisoned: later fires still work.
            assert_eq!(fire("boom"), None);
            arm_spec("boom=error").unwrap();
            assert_eq!(fire("boom"), Some(Fault::Error));
        }

        #[test]
        fn delay_sleeps_then_continues() {
            let _s = scoped("slow=delay:20");
            let t0 = std::time::Instant::now();
            assert_eq!(fire("slow"), None);
            assert!(t0.elapsed() >= std::time::Duration::from_millis(15));
        }
    }
}
