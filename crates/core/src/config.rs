//! Configuration of the mGBA fitting flow, with the paper's defaults.

use parallel::Parallelism;
use serde::{Deserialize, Serialize};

/// All tunables of the mGBA flow. `Default` reproduces the paper's
/// reported settings (§3.2, §3.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MgbaConfig {
    /// Critical paths kept per endpoint (`k'` in §3.2; paper: 20).
    pub paths_per_endpoint: usize,
    /// Cap on the total number of selected paths (`m'`; paper: 5·10⁶ —
    /// scaled here with the designs).
    pub max_paths: usize,
    /// Keep only timing-violated (negative GBA slack) paths, as the
    /// implementation flow does. Disable to fit all critical paths.
    pub only_violating: bool,
    /// Constraint tolerance `ε` of Eq. (5): the fitted slack may exceed
    /// the PBA slack by at most `ε·|s_pba|`.
    pub epsilon: f64,
    /// Penalty weight `w` of Eq. (6) on constraint violations.
    pub penalty: f64,
    /// Initial row-selection ratio `r₀` of Algorithm 1 (paper: 10⁻⁵,
    /// scaled up here because our matrices are smaller).
    pub initial_row_ratio: f64,
    /// Outer convergence tolerance `ε_u` of Algorithm 1 (paper: 0.1).
    pub outer_tolerance: f64,
    /// Fraction of rows sampled per stochastic gradient step (`k''`;
    /// paper: 2% of the reduced system).
    pub row_fraction: f64,
    /// Inner convergence tolerance `ε_c` of Algorithm 2 (paper: 10⁻³).
    pub inner_tolerance: f64,
    /// Base step size `s` of Algorithm 2 (paper: 0.02).
    pub step_size: f64,
    /// Hyperbolic step decay rate: the effective step at iteration `k` is
    /// `s / (1 + decay·k)`. The paper's "carefully dynamic step-size
    /// control" (paper ref \[15\]) requires a decaying schedule for convergence.
    pub step_decay: f64,
    /// Iterations between convergence checks (the relative-change test of
    /// Algorithms 1–2 is applied over this window to de-noise stochastic
    /// steps).
    pub check_window: usize,
    /// Hard iteration cap per solve.
    pub max_iterations: usize,
    /// RNG seed for row sampling.
    pub seed: u64,
    /// Worker threads for the batch PBA, matrix-assembly, and full-matrix
    /// solver kernels. `0` defers to the process default (CLI
    /// `--threads`, then `MGBA_THREADS`, then all cores); `1` is the
    /// exact serial path. Results are bit-identical for every value.
    pub threads: usize,
}

impl Default for MgbaConfig {
    fn default() -> Self {
        Self {
            paths_per_endpoint: 20,
            max_paths: 5_000_000,
            only_violating: true,
            epsilon: 0.02,
            penalty: 4.0,
            initial_row_ratio: 1e-2,
            outer_tolerance: 0.1,
            row_fraction: 0.02,
            inner_tolerance: 1e-3,
            step_size: 0.02,
            step_decay: 8e-3,
            check_window: 25,
            max_iterations: 20_000,
            seed: 0xD5A1,
            threads: 0,
        }
    }
}

impl MgbaConfig {
    /// Config with a different seed (for repeated stochastic runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Config with an explicit thread count (`0` = process default,
    /// `1` = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The resolved [`Parallelism`] for this run.
    pub fn parallelism(&self) -> Parallelism {
        Parallelism::new(self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MgbaConfig::default();
        assert_eq!(c.paths_per_endpoint, 20);
        assert_eq!(c.max_paths, 5_000_000);
        assert_eq!(c.row_fraction, 0.02);
        assert_eq!(c.inner_tolerance, 1e-3);
        assert_eq!(c.step_size, 0.02);
        assert_eq!(c.outer_tolerance, 0.1);
    }

    #[test]
    fn with_seed_overrides() {
        let c = MgbaConfig::default().with_seed(7);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn threads_resolve_to_parallelism() {
        assert_eq!(MgbaConfig::default().threads, 0);
        let c = MgbaConfig::default().with_threads(3);
        assert_eq!(c.parallelism().threads(), 3);
        assert!(MgbaConfig::default().parallelism().threads() >= 1);
    }
}
