//! Configuration of the mGBA fitting flow, with the paper's defaults.

use crate::error::MgbaError;
use parallel::Parallelism;
use serde::{Deserialize, Serialize};

/// All tunables of the mGBA flow. `Default` reproduces the paper's
/// reported settings (§3.2, §3.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MgbaConfig {
    /// Critical paths kept per endpoint (`k'` in §3.2; paper: 20).
    pub paths_per_endpoint: usize,
    /// Cap on the total number of selected paths (`m'`; paper: 5·10⁶ —
    /// scaled here with the designs).
    pub max_paths: usize,
    /// Keep only timing-violated (negative GBA slack) paths, as the
    /// implementation flow does. Disable to fit all critical paths.
    pub only_violating: bool,
    /// Constraint tolerance `ε` of Eq. (5): the fitted slack may exceed
    /// the PBA slack by at most `ε·|s_pba|`.
    pub epsilon: f64,
    /// Penalty weight `w` of Eq. (6) on constraint violations.
    pub penalty: f64,
    /// Initial row-selection ratio `r₀` of Algorithm 1 (paper: 10⁻⁵,
    /// scaled up here because our matrices are smaller).
    pub initial_row_ratio: f64,
    /// Outer convergence tolerance `ε_u` of Algorithm 1 (paper: 0.1).
    pub outer_tolerance: f64,
    /// Fraction of rows sampled per stochastic gradient step (`k''`;
    /// paper: 2% of the reduced system).
    pub row_fraction: f64,
    /// Inner convergence tolerance `ε_c` of Algorithm 2 (paper: 10⁻³).
    pub inner_tolerance: f64,
    /// Base step size `s` of Algorithm 2 (paper: 0.02).
    pub step_size: f64,
    /// Hyperbolic step decay rate: the effective step at iteration `k` is
    /// `s / (1 + decay·k)`. The paper's "carefully dynamic step-size
    /// control" (paper ref \[15\]) requires a decaying schedule for convergence.
    pub step_decay: f64,
    /// Iterations between convergence checks (the relative-change test of
    /// Algorithms 1–2 is applied over this window to de-noise stochastic
    /// steps).
    pub check_window: usize,
    /// Hard iteration cap per solve.
    pub max_iterations: usize,
    /// RNG seed for row sampling.
    pub seed: u64,
    /// Worker threads for the batch PBA, matrix-assembly, and full-matrix
    /// solver kernels. `0` defers to the process default (CLI
    /// `--threads`, then `MGBA_THREADS`, then all cores); `1` is the
    /// exact serial path. Results are bit-identical for every value.
    pub threads: usize,
    /// Wall-clock budget per solver stage in milliseconds; `0` disables
    /// the deadline (the default, keeping default runs fully
    /// deterministic). When exceeded the guard aborts the stage and the
    /// fallback ladder demotes it.
    pub solver_timeout_ms: u64,
    /// Divergence guard: a windowed objective estimate exceeding
    /// `divergence_factor ×` the starting objective aborts the stage
    /// (the objective of a normalized-step descent must never grow past
    /// its starting point by orders of magnitude).
    pub divergence_factor: f64,
    /// Divergence guard: this many *consecutive* windows with a growing
    /// objective abort the stage.
    pub divergence_streak: usize,
    /// Staged solver fallback (requested solver → CGNR → GD → identity
    /// weights). When `false` a failed solve skips the intermediate
    /// stages and drops straight to identity weights (x = 0, raw GBA) —
    /// an unusable iterate is never returned either way.
    pub fallback: bool,
}

impl Default for MgbaConfig {
    fn default() -> Self {
        Self {
            paths_per_endpoint: 20,
            max_paths: 5_000_000,
            only_violating: true,
            epsilon: 0.02,
            penalty: 4.0,
            initial_row_ratio: 1e-2,
            outer_tolerance: 0.1,
            row_fraction: 0.02,
            inner_tolerance: 1e-3,
            step_size: 0.02,
            step_decay: 8e-3,
            check_window: 25,
            max_iterations: 20_000,
            seed: 0xD5A1,
            threads: 0,
            solver_timeout_ms: 0,
            divergence_factor: 1e3,
            divergence_streak: 4,
            fallback: true,
        }
    }
}

impl MgbaConfig {
    /// A validating builder starting from the paper defaults.
    ///
    /// Struct-literal construction keeps working (every field is public);
    /// the builder adds up-front validation so bad values surface as a
    /// typed [`MgbaError::Config`] instead of a silent mis-fit deep in
    /// the solver.
    pub fn builder() -> MgbaConfigBuilder {
        MgbaConfigBuilder::default()
    }

    /// Config with a different seed (for repeated stochastic runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Config with an explicit thread count (`0` = process default,
    /// `1` = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The resolved [`Parallelism`] for this run.
    pub fn parallelism(&self) -> Parallelism {
        Parallelism::new(self.threads)
    }

    /// Checks every invariant the builder enforces. Useful for configs
    /// assembled by struct literal or deserialized from disk.
    pub fn validate(&self) -> Result<(), MgbaError> {
        if self.paths_per_endpoint < 1 {
            return Err(MgbaError::config(
                "paths_per_endpoint",
                "must be ≥ 1 (the fit needs at least one path per endpoint)",
            ));
        }
        if self.epsilon < 0.0 || !self.epsilon.is_finite() {
            return Err(MgbaError::config(
                "epsilon",
                format!("must be a finite value ≥ 0, got {}", self.epsilon),
            ));
        }
        if self.penalty <= 0.0 || !self.penalty.is_finite() {
            return Err(MgbaError::config(
                "penalty",
                format!("must be a finite value > 0, got {}", self.penalty),
            ));
        }
        if !(self.initial_row_ratio > 0.0 && self.initial_row_ratio <= 1.0) {
            return Err(MgbaError::config(
                "initial_row_ratio",
                format!("must be in (0, 1], got {}", self.initial_row_ratio),
            ));
        }
        if !(self.row_fraction > 0.0 && self.row_fraction <= 1.0) {
            return Err(MgbaError::config(
                "row_fraction",
                format!("must be in (0, 1], got {}", self.row_fraction),
            ));
        }
        if self.step_size <= 0.0 || !self.step_size.is_finite() {
            return Err(MgbaError::config(
                "step_size",
                format!("must be a finite value > 0, got {}", self.step_size),
            ));
        }
        if self.check_window < 1 {
            return Err(MgbaError::config("check_window", "must be ≥ 1"));
        }
        if self.divergence_factor <= 1.0 || !self.divergence_factor.is_finite() {
            return Err(MgbaError::config(
                "divergence_factor",
                format!("must be a finite value > 1, got {}", self.divergence_factor),
            ));
        }
        if self.divergence_streak < 1 {
            return Err(MgbaError::config("divergence_streak", "must be ≥ 1"));
        }
        Ok(())
    }
}

/// Validating builder for [`MgbaConfig`], created by
/// [`MgbaConfig::builder`]. Unset fields keep the paper defaults;
/// [`MgbaConfigBuilder::build`] rejects out-of-range values with
/// [`MgbaError::Config`].
///
/// ```
/// use mgba::MgbaConfig;
///
/// let config = MgbaConfig::builder()
///     .epsilon(0.05)
///     .paths_per_endpoint(10)
///     .threads(1)
///     .build()
///     .unwrap();
/// assert_eq!(config.epsilon, 0.05);
/// assert!(MgbaConfig::builder().penalty(-1.0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MgbaConfigBuilder {
    config: MgbaConfig,
}

impl MgbaConfigBuilder {
    /// Critical paths kept per endpoint (`k'`).
    pub fn paths_per_endpoint(mut self, v: usize) -> Self {
        self.config.paths_per_endpoint = v;
        self
    }

    /// Cap on the total number of selected paths (`m'`).
    pub fn max_paths(mut self, v: usize) -> Self {
        self.config.max_paths = v;
        self
    }

    /// Keep only timing-violated paths.
    pub fn only_violating(mut self, v: bool) -> Self {
        self.config.only_violating = v;
        self
    }

    /// Constraint tolerance `ε` of Eq. (5).
    pub fn epsilon(mut self, v: f64) -> Self {
        self.config.epsilon = v;
        self
    }

    /// Penalty weight `w` of Eq. (6).
    pub fn penalty(mut self, v: f64) -> Self {
        self.config.penalty = v;
        self
    }

    /// Initial row-selection ratio `r₀` of Algorithm 1.
    pub fn initial_row_ratio(mut self, v: f64) -> Self {
        self.config.initial_row_ratio = v;
        self
    }

    /// Outer convergence tolerance `ε_u` of Algorithm 1.
    pub fn outer_tolerance(mut self, v: f64) -> Self {
        self.config.outer_tolerance = v;
        self
    }

    /// Fraction of rows sampled per stochastic gradient step (`k''`).
    pub fn row_fraction(mut self, v: f64) -> Self {
        self.config.row_fraction = v;
        self
    }

    /// Inner convergence tolerance `ε_c` of Algorithm 2.
    pub fn inner_tolerance(mut self, v: f64) -> Self {
        self.config.inner_tolerance = v;
        self
    }

    /// Base step size `s` of Algorithm 2.
    pub fn step_size(mut self, v: f64) -> Self {
        self.config.step_size = v;
        self
    }

    /// Hyperbolic step decay rate.
    pub fn step_decay(mut self, v: f64) -> Self {
        self.config.step_decay = v;
        self
    }

    /// Iterations between convergence checks.
    pub fn check_window(mut self, v: usize) -> Self {
        self.config.check_window = v;
        self
    }

    /// Hard iteration cap per solve.
    pub fn max_iterations(mut self, v: usize) -> Self {
        self.config.max_iterations = v;
        self
    }

    /// RNG seed for row sampling.
    pub fn seed(mut self, v: u64) -> Self {
        self.config.seed = v;
        self
    }

    /// Worker threads (`0` = process default, `1` = serial).
    pub fn threads(mut self, v: usize) -> Self {
        self.config.threads = v;
        self
    }

    /// Wall-clock budget per solver stage in milliseconds (`0` = no
    /// deadline).
    pub fn solver_timeout_ms(mut self, v: u64) -> Self {
        self.config.solver_timeout_ms = v;
        self
    }

    /// Divergence guard: objective growth factor that aborts a stage.
    pub fn divergence_factor(mut self, v: f64) -> Self {
        self.config.divergence_factor = v;
        self
    }

    /// Divergence guard: consecutive growing windows that abort a stage.
    pub fn divergence_streak(mut self, v: usize) -> Self {
        self.config.divergence_streak = v;
        self
    }

    /// Enables/disables the staged solver fallback ladder.
    pub fn fallback(mut self, v: bool) -> Self {
        self.config.fallback = v;
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> Result<MgbaConfig, MgbaError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MgbaConfig::default();
        assert_eq!(c.paths_per_endpoint, 20);
        assert_eq!(c.max_paths, 5_000_000);
        assert_eq!(c.row_fraction, 0.02);
        assert_eq!(c.inner_tolerance, 1e-3);
        assert_eq!(c.step_size, 0.02);
        assert_eq!(c.outer_tolerance, 0.1);
    }

    #[test]
    fn with_seed_overrides() {
        let c = MgbaConfig::default().with_seed(7);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn builder_defaults_match_struct_default() {
        let built = MgbaConfig::builder().build().unwrap();
        assert_eq!(built, MgbaConfig::default());
    }

    #[test]
    fn builder_applies_setters() {
        let c = MgbaConfig::builder()
            .paths_per_endpoint(7)
            .epsilon(0.1)
            .penalty(2.0)
            .initial_row_ratio(0.5)
            .row_fraction(0.1)
            .seed(42)
            .threads(2)
            .build()
            .unwrap();
        assert_eq!(c.paths_per_endpoint, 7);
        assert_eq!(c.epsilon, 0.1);
        assert_eq!(c.penalty, 2.0);
        assert_eq!(c.initial_row_ratio, 0.5);
        assert_eq!(c.row_fraction, 0.1);
        assert_eq!(c.seed, 42);
        assert_eq!(c.threads, 2);
    }

    #[test]
    fn builder_rejects_out_of_range_values() {
        use crate::error::MgbaError;
        let cases: Vec<(&'static str, MgbaConfigBuilder)> = vec![
            ("epsilon", MgbaConfig::builder().epsilon(-0.1)),
            ("epsilon", MgbaConfig::builder().epsilon(f64::NAN)),
            ("penalty", MgbaConfig::builder().penalty(0.0)),
            ("penalty", MgbaConfig::builder().penalty(f64::INFINITY)),
            (
                "initial_row_ratio",
                MgbaConfig::builder().initial_row_ratio(0.0),
            ),
            (
                "initial_row_ratio",
                MgbaConfig::builder().initial_row_ratio(1.5),
            ),
            ("row_fraction", MgbaConfig::builder().row_fraction(-0.2)),
            ("row_fraction", MgbaConfig::builder().row_fraction(2.0)),
            (
                "paths_per_endpoint",
                MgbaConfig::builder().paths_per_endpoint(0),
            ),
            ("step_size", MgbaConfig::builder().step_size(0.0)),
            ("check_window", MgbaConfig::builder().check_window(0)),
            (
                "divergence_factor",
                MgbaConfig::builder().divergence_factor(1.0),
            ),
            (
                "divergence_factor",
                MgbaConfig::builder().divergence_factor(f64::NAN),
            ),
            (
                "divergence_streak",
                MgbaConfig::builder().divergence_streak(0),
            ),
        ];
        for (field, builder) in cases {
            match builder.build() {
                Err(MgbaError::Config { field: f, .. }) => {
                    assert_eq!(f, field, "wrong field reported")
                }
                other => panic!("{field}: expected Config error, got {other:?}"),
            }
        }
    }

    #[test]
    fn validate_checks_struct_literals() {
        let mut c = MgbaConfig::default();
        assert!(c.validate().is_ok());
        c.row_fraction = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn guard_defaults_are_inert_and_settable() {
        let c = MgbaConfig::default();
        assert_eq!(c.solver_timeout_ms, 0, "no deadline by default");
        assert!(c.fallback);
        let c = MgbaConfig::builder()
            .solver_timeout_ms(250)
            .divergence_factor(50.0)
            .divergence_streak(2)
            .fallback(false)
            .build()
            .unwrap();
        assert_eq!(c.solver_timeout_ms, 250);
        assert_eq!(c.divergence_factor, 50.0);
        assert_eq!(c.divergence_streak, 2);
        assert!(!c.fallback);
    }

    #[test]
    fn threads_resolve_to_parallelism() {
        assert_eq!(MgbaConfig::default().threads, 0);
        let c = MgbaConfig::default().with_threads(3);
        assert_eq!(c.parallelism().threads(), 3);
        assert!(MgbaConfig::default().parallelism().threads() >= 1);
    }
}
