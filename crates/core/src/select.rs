//! Critical-path selection schemes (§3.2 of the paper).
//!
//! The fitting problem cannot include every timing path, so a selection
//! scheme chooses which paths constrain the weights. The paper compares:
//!
//! - **Global top-m′** — sort all paths by GBA slack, keep the worst m′.
//!   Concentrates on critical gates and leaves much of the design
//!   uncovered (their small case: 47% gate coverage, error 72.4%).
//! - **Per-endpoint top-k′** — for every endpoint keep its k′ worst
//!   paths. Covers far more gates (95% / error 5.1% in the paper) and is
//!   also cheaper: only per-endpoint sorts are needed.

use serde::{Deserialize, Serialize};
use sta::{paths, Path, Sta};
use std::collections::HashSet;

/// Which selection scheme to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionScheme {
    /// Worst `m` paths globally, regardless of endpoint (the paper's
    /// strawman first scheme). Paths are drawn from per-endpoint
    /// enumeration with `k_enum` candidates each before the global sort.
    TopGlobal {
        /// Candidate paths enumerated per endpoint before sorting.
        k_enum: usize,
        /// Paths kept after the global sort.
        m: usize,
    },
    /// The paper's second scheme: `k` worst paths per endpoint, capped at
    /// `max_total` overall.
    PerEndpoint {
        /// Paths kept per endpoint (`k'`).
        k: usize,
        /// Global cap (`m'`).
        max_total: usize,
    },
}

/// Outcome of a selection run.
#[derive(Debug, Clone)]
pub struct Selection {
    /// The selected paths.
    pub paths: Vec<Path>,
    /// Distinct combinational gates appearing on selected paths.
    pub covered_gates: usize,
    /// Total combinational gates in the design.
    pub total_gates: usize,
}

impl Selection {
    /// Gate coverage in `[0, 1]` — the paper's §3.2 coverage statistic.
    pub fn coverage(&self) -> f64 {
        if self.total_gates == 0 {
            0.0
        } else {
            self.covered_gates as f64 / self.total_gates as f64
        }
    }
}

/// Runs `scheme` on `sta`, optionally keeping only violating paths.
pub fn select_paths(sta: &Sta, scheme: SelectionScheme, only_violating: bool) -> Selection {
    let mut selected = match scheme {
        SelectionScheme::TopGlobal { k_enum, m } => {
            let mut all = paths::select_top_global_paths(sta, k_enum, usize::MAX);
            if only_violating {
                all.retain(|p| p.gba_slack < 0.0);
            }
            all.truncate(m);
            all
        }
        SelectionScheme::PerEndpoint { k, max_total } => {
            paths::select_critical_paths(sta, k, max_total, only_violating)
        }
    };
    // Stable order: worst slack first (already sorted by the selectors for
    // the global scheme; enforce for both).
    selected.sort_by(|a, b| {
        a.gba_slack
            .partial_cmp(&b.gba_slack)
            .expect("slacks are finite")
    });

    let mut gates: HashSet<netlist::CellId> = HashSet::new();
    for p in &selected {
        for &c in &p.cells[1..p.cells.len().saturating_sub(1)] {
            gates.insert(c);
        }
    }
    let total_gates = sta
        .netlist()
        .cells()
        .filter(|(_, c)| c.role == netlist::CellRole::Combinational)
        .count();
    Selection {
        covered_gates: gates.len(),
        total_gates,
        paths: selected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GeneratorConfig;
    use sta::{DerateSet, Sdc};

    fn tight_engine(seed: u64) -> Sta {
        let n = GeneratorConfig::small(seed).generate();
        // Pick a period that produces violations: run once, then tighten.
        let probe = Sta::new(n.clone(), Sdc::with_period(10_000.0), DerateSet::standard()).unwrap();
        let max_arrival = probe
            .netlist()
            .endpoints()
            .iter()
            .map(|&e| probe.endpoint_arrival(e))
            .filter(|a| a.is_finite())
            .fold(0.0, f64::max);
        // Probe WNS first: slack shifts 1:1 with the period, so this
        // guarantees deep violations regardless of clock insertion delay.
        let period = 10_000.0 - probe.wns() - 0.15 * max_arrival;
        Sta::new(n, Sdc::with_period(period), DerateSet::standard()).unwrap()
    }

    #[test]
    fn per_endpoint_covers_more_gates_than_global() {
        // The load-bearing claim of §3.2: for a comparable path budget,
        // the per-endpoint scheme covers more gates.
        let sta = tight_engine(81);
        let per = select_paths(
            &sta,
            SelectionScheme::PerEndpoint {
                k: 5,
                max_total: usize::MAX,
            },
            false,
        );
        let budget = per.paths.len();
        let global = select_paths(
            &sta,
            SelectionScheme::TopGlobal {
                k_enum: 20,
                m: budget,
            },
            false,
        );
        assert!(
            per.coverage() > global.coverage(),
            "per-endpoint {:.2} must beat global {:.2} at equal budget {budget}",
            per.coverage(),
            global.coverage()
        );
    }

    #[test]
    fn violating_filter_restricts() {
        let sta = tight_engine(82);
        let all = select_paths(
            &sta,
            SelectionScheme::PerEndpoint {
                k: 5,
                max_total: usize::MAX,
            },
            false,
        );
        let viol = select_paths(
            &sta,
            SelectionScheme::PerEndpoint {
                k: 5,
                max_total: usize::MAX,
            },
            true,
        );
        assert!(viol.paths.len() <= all.paths.len());
        assert!(viol.paths.iter().all(|p| p.gba_slack < 0.0));
        assert!(!viol.paths.is_empty(), "tight period must violate");
    }

    #[test]
    fn selection_sorted_worst_first() {
        let sta = tight_engine(83);
        let sel = select_paths(
            &sta,
            SelectionScheme::PerEndpoint {
                k: 4,
                max_total: 100,
            },
            false,
        );
        for w in sel.paths.windows(2) {
            assert!(w[0].gba_slack <= w[1].gba_slack + 1e-9);
        }
        assert!(sel.covered_gates <= sel.total_gates);
        assert!(sel.coverage() > 0.0);
    }

    #[test]
    fn max_total_caps_selection() {
        let sta = tight_engine(84);
        let sel = select_paths(
            &sta,
            SelectionScheme::PerEndpoint {
                k: 10,
                max_total: 7,
            },
            false,
        );
        assert_eq!(sel.paths.len(), 7);
    }
}
