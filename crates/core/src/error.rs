//! The workspace-wide typed error, [`MgbaError`].
//!
//! Every fallible surface of the mGBA toolchain funnels into this enum:
//! parsing (Liberty, Verilog, native netlist, weights), configuration
//! validation ([`crate::config::MgbaConfigBuilder`]), solver failures,
//! file I/O, and command-line usage. The variants keep their underlying
//! causes (`source()` chains to the original parse error), so callers can
//! match on the broad category and still drill down.

use crate::weights_io::WeightsError;
use ingest::EdifError;
use netlist::{BuildError, ParseLibertyError, ParseNetlistError, ParseVerilogError};
use std::error::Error;
use std::fmt;
use std::path::PathBuf;

/// Which parser produced a [`MgbaError::Parse`].
#[derive(Debug)]
pub enum ParseError {
    /// Native netlist interchange format.
    Netlist(ParseNetlistError),
    /// Structural Verilog.
    Verilog(ParseVerilogError),
    /// Liberty library.
    Liberty(ParseLibertyError),
    /// Netlist graph construction.
    Build(BuildError),
    /// Weights sidecar file.
    Weights(WeightsError),
    /// EDIF 2.0.0 document.
    Edif(EdifError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Netlist(e) => write!(f, "netlist: {e}"),
            ParseError::Verilog(e) => write!(f, "verilog: {e}"),
            ParseError::Liberty(e) => write!(f, "liberty: {e}"),
            ParseError::Build(e) => write!(f, "netlist build: {e}"),
            ParseError::Weights(e) => write!(f, "weights: {e}"),
            ParseError::Edif(e) => write!(f, "edif: {e}"),
        }
    }
}

impl ParseError {
    fn inner(&self) -> &(dyn Error + 'static) {
        match self {
            ParseError::Netlist(e) => e,
            ParseError::Verilog(e) => e,
            ParseError::Liberty(e) => e,
            ParseError::Build(e) => e,
            ParseError::Weights(e) => e,
            ParseError::Edif(e) => e,
        }
    }
}

/// The error type of the mGBA toolchain.
#[derive(Debug)]
pub enum MgbaError {
    /// An input file failed to parse or assemble.
    Parse(ParseError),
    /// A configuration value failed validation.
    Config {
        /// The offending field.
        field: &'static str,
        /// Why it was rejected.
        message: String,
    },
    /// A solver failed to produce an acceptable solution.
    Solver {
        /// Paper-style solver name.
        solver: String,
        /// What went wrong.
        message: String,
    },
    /// A file operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// Bad command-line usage.
    Usage(String),
    /// An operation exceeded its time budget (socket read/write, solver
    /// wall clock).
    Timeout {
        /// What was being waited for.
        what: String,
        /// The budget that was exceeded, in milliseconds.
        ms: u64,
    },
    /// A netlist failed the collected-issues lint with error-severity
    /// findings (the full report has already been shown to the user).
    Lint {
        /// The linted file or design name.
        path: PathBuf,
        /// Error-severity findings.
        errors: usize,
        /// Warning-severity findings.
        warnings: usize,
    },
    /// An unexpected internal failure that was contained (e.g. a request
    /// handler panic caught at the server boundary).
    Internal(String),
}

impl MgbaError {
    /// Constructs a [`MgbaError::Config`] for `field`.
    pub fn config(field: &'static str, message: impl Into<String>) -> Self {
        MgbaError::Config {
            field,
            message: message.into(),
        }
    }

    /// Constructs a [`MgbaError::Io`] wrapping an OS error for `path`.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        MgbaError::Io {
            path: path.into(),
            source,
        }
    }

    /// Constructs a [`MgbaError::Timeout`] for `what` after `ms`
    /// milliseconds.
    pub fn timeout(what: impl Into<String>, ms: u64) -> Self {
        MgbaError::Timeout {
            what: what.into(),
            ms,
        }
    }
}

impl fmt::Display for MgbaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MgbaError::Parse(e) => write!(f, "parse error: {e}"),
            MgbaError::Config { field, message } => {
                write!(f, "invalid config: {field}: {message}")
            }
            MgbaError::Solver { solver, message } => {
                write!(f, "solver {solver}: {message}")
            }
            MgbaError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            MgbaError::Usage(msg) => f.write_str(msg),
            MgbaError::Timeout { what, ms } => {
                write!(f, "timed out after {ms} ms: {what}")
            }
            MgbaError::Lint {
                path,
                errors,
                warnings,
            } => write!(
                f,
                "{}: lint failed with {errors} error(s), {warnings} warning(s)",
                path.display()
            ),
            MgbaError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl Error for MgbaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MgbaError::Parse(e) => Some(e.inner()),
            MgbaError::Io { source, .. } => Some(source),
            MgbaError::Config { .. }
            | MgbaError::Solver { .. }
            | MgbaError::Usage(_)
            | MgbaError::Timeout { .. }
            | MgbaError::Lint { .. }
            | MgbaError::Internal(_) => None,
        }
    }
}

impl From<ParseNetlistError> for MgbaError {
    fn from(e: ParseNetlistError) -> Self {
        MgbaError::Parse(ParseError::Netlist(e))
    }
}

impl From<ParseVerilogError> for MgbaError {
    fn from(e: ParseVerilogError) -> Self {
        MgbaError::Parse(ParseError::Verilog(e))
    }
}

impl From<ParseLibertyError> for MgbaError {
    fn from(e: ParseLibertyError) -> Self {
        MgbaError::Parse(ParseError::Liberty(e))
    }
}

impl From<BuildError> for MgbaError {
    fn from(e: BuildError) -> Self {
        MgbaError::Parse(ParseError::Build(e))
    }
}

impl From<EdifError> for MgbaError {
    fn from(e: EdifError) -> Self {
        MgbaError::Parse(ParseError::Edif(e))
    }
}

impl From<WeightsError> for MgbaError {
    fn from(e: WeightsError) -> Self {
        MgbaError::Parse(ParseError::Weights(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_cause() {
        let e = MgbaError::from(ParseNetlistError::Invalid("dangling net".into()));
        let s = e.to_string();
        assert!(s.starts_with("parse error: netlist:"), "{s}");
        assert!(e.source().is_some());

        let e = MgbaError::config("epsilon", "must be ≥ 0, got -1");
        assert_eq!(
            e.to_string(),
            "invalid config: epsilon: must be ≥ 0, got -1"
        );
        assert!(e.source().is_none());
    }

    #[test]
    fn io_chains_to_os_error() {
        let os = std::io::Error::new(std::io::ErrorKind::NotFound, "no such file");
        let e = MgbaError::io("designs/x.nl", os);
        assert!(e.to_string().contains("designs/x.nl"));
        assert!(e.source().is_some());
    }

    #[test]
    fn conversions_cover_all_parsers() {
        // Each netlist-side error converts without boilerplate at call
        // sites (`?` just works).
        fn takes(_: MgbaError) {}
        takes(ParseNetlistError::UnsupportedLibrary("foo".into()).into());
        takes(ParseVerilogError::Syntax("x".into()).into());
        takes(ParseLibertyError::Syntax("y".into()).into());
        takes(
            WeightsError::Malformed {
                line: 2,
                reason: "z".into(),
            }
            .into(),
        );
    }
}
