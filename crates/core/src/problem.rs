//! The mGBA fitting problem (Eq. (5)–(9) of the paper).
//!
//! # Formulation
//!
//! The paper attaches a weighting factor `x_j` to every gate and fits the
//! weighted GBA path slacks to the golden PBA slacks. Written as the
//! correction form (see DESIGN.md: the weights start at 0 and the optimal
//! solution is sparse around 0, so `x_j` corrects the derate as
//! `λ_j·(1 + x_j)`), the model slack of path `i` is
//!
//! ```text
//! s_i(x)  =  s_gba,i − (A·x)_i ,      a_ij = δ_ij · d_j · λ_j
//! ```
//!
//! and the fit is the constrained least squares of Eq. (5),
//!
//! ```text
//! min ‖s(x) − s_pba‖₂   s.t.  s_i(x) ≤ s_pba,i + ε·|s_pba,i| ,
//! ```
//!
//! which in terms of `r = A·x − b` with `b = s_gba − s_pba` reads
//! `min ‖r‖₂` subject to `(A·x)_i ≥ b_i − ε·|s_pba,i|` — the fitted slack
//! must stay on the pessimistic side of PBA (within tolerance). The
//! constraints are folded into the objective with the one-sided quadratic
//! penalty of Eq. (6).

use crate::metrics;
use netlist::{CellId, CellRole};
use sparsela::{CsrBuilder, CsrMatrix};
use sta::{gba_path_timing, pba_timing, Path, Sta};
use std::collections::HashMap;

/// The assembled least-squares-with-penalty problem.
#[derive(Debug, Clone)]
pub struct FitProblem {
    a: CsrMatrix,
    /// Right-hand side `b_i = s_gba,i − s_pba,i` (≤ 0 up to noise: GBA is
    /// never less pessimistic than PBA).
    b: Vec<f64>,
    s_gba: Vec<f64>,
    s_pba: Vec<f64>,
    /// Per-row lower bound on `(A·x)_i` from the Eq. (5) constraint.
    lower: Vec<f64>,
    /// Column → netlist cell mapping.
    columns: Vec<CellId>,
    penalty: f64,
}

impl FitProblem {
    /// Builds the problem from an engine (with **zero weights** — the
    /// matrix encodes original-GBA derates) and a set of selected paths.
    ///
    /// # Panics
    ///
    /// Panics if any selected path's gate carries a non-zero weight (the
    /// problem must be assembled against original GBA).
    pub fn build(sta: &Sta, paths: &[Path], epsilon: f64, penalty: f64) -> Self {
        let mut col_of: HashMap<CellId, usize> = HashMap::new();
        let mut columns: Vec<CellId> = Vec::new();
        // First pass: discover the column space — combinational gates on
        // the selected paths plus launching flip-flops (their clock-to-Q
        // arc is a weighted delay unit too, which lets the fit absorb
        // launch-specific CRPR pessimism).
        for p in paths {
            for &c in weighted_cells(p, sta) {
                assert_eq!(
                    sta.gate_weight(c),
                    0.0,
                    "FitProblem must be built against original GBA (zero weights)"
                );
                col_of.entry(c).or_insert_with(|| {
                    columns.push(c);
                    columns.len() - 1
                });
            }
        }
        let mut builder = CsrBuilder::new(columns.len());
        let mut b = Vec::with_capacity(paths.len());
        let mut s_gba = Vec::with_capacity(paths.len());
        let mut s_pba = Vec::with_capacity(paths.len());
        let mut lower = Vec::with_capacity(paths.len());
        let mut row: Vec<(usize, f64)> = Vec::new();
        for p in paths {
            row.clear();
            for &c in weighted_cells(p, sta) {
                let coeff = sta.gate_delay(c) * sta.gate_derate(c);
                row.push((col_of[&c], coeff));
            }
            builder.push_row(&row);
            let gba = gba_path_timing(sta, p).slack;
            let pba = pba_timing(sta, p).slack;
            b.push(gba - pba);
            lower.push((gba - pba) - epsilon * pba.abs());
            s_gba.push(gba);
            s_pba.push(pba);
        }
        Self {
            a: builder.build(),
            b,
            s_gba,
            s_pba,
            lower,
            columns,
            penalty,
        }
    }

    /// Builds a problem from raw parts (testing and synthetic workloads).
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths disagree with the matrix shape.
    pub fn from_parts(
        a: CsrMatrix,
        s_gba: Vec<f64>,
        s_pba: Vec<f64>,
        columns: Vec<CellId>,
        epsilon: f64,
        penalty: f64,
    ) -> Self {
        assert_eq!(a.num_rows(), s_gba.len());
        assert_eq!(a.num_rows(), s_pba.len());
        assert_eq!(a.num_cols(), columns.len());
        let b: Vec<f64> = s_gba.iter().zip(&s_pba).map(|(g, p)| g - p).collect();
        let lower: Vec<f64> = b
            .iter()
            .zip(&s_pba)
            .map(|(bi, pi)| bi - epsilon * pi.abs())
            .collect();
        Self {
            a,
            b,
            s_gba,
            s_pba,
            lower,
            columns,
            penalty,
        }
    }

    /// The sparse path×gate matrix `A`.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.a
    }

    /// Number of path rows (`m` in the paper).
    pub fn num_paths(&self) -> usize {
        self.a.num_rows()
    }

    /// Number of gate columns (`n` in the paper).
    pub fn num_gates(&self) -> usize {
        self.a.num_cols()
    }

    /// Column → cell mapping.
    pub fn columns(&self) -> &[CellId] {
        &self.columns
    }

    /// Golden PBA slacks of the selected paths.
    pub fn pba_slacks(&self) -> &[f64] {
        &self.s_pba
    }

    /// Original GBA slacks of the selected paths.
    pub fn gba_slacks(&self) -> &[f64] {
        &self.s_gba
    }

    /// Model slack of path `i` under weights `x`: `s_gba,i − (A·x)_i`.
    pub fn model_slack(&self, i: usize, x: &[f64]) -> f64 {
        self.s_gba[i] - self.a.row_dot(i, x)
    }

    /// All model slacks under `x`.
    pub fn model_slacks(&self, x: &[f64]) -> Vec<f64> {
        (0..self.num_paths())
            .map(|i| self.model_slack(i, x))
            .collect()
    }

    /// Penalized objective value of Eq. (6).
    pub fn objective(&self, x: &[f64]) -> f64 {
        let mut f = 0.0;
        for i in 0..self.num_paths() {
            let ax = self.a.row_dot(i, x);
            let r = ax - self.b[i];
            f += r * r;
            let v = ax - self.lower[i];
            if v < 0.0 {
                f += self.penalty * v * v;
            }
        }
        f
    }

    /// Full gradient of the penalized objective.
    pub fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let mut g = vec![0.0; self.num_gates()];
        for i in 0..self.num_paths() {
            self.accumulate_row_gradient(i, x, &mut g);
        }
        g
    }

    /// Adds row `i`'s gradient contribution into `g` (the kernel of the
    /// stochastic solver).
    #[inline]
    pub fn accumulate_row_gradient(&self, i: usize, x: &[f64], g: &mut [f64]) {
        let ax = self.a.row_dot(i, x);
        let mut coeff = 2.0 * (ax - self.b[i]);
        let v = ax - self.lower[i];
        if v < 0.0 {
            coeff += 2.0 * self.penalty * v;
        }
        self.a.scatter_row(i, coeff, g);
    }

    /// Number of paths violating the Eq. (5) constraint under `x` (the
    /// model is more optimistic than PBA beyond the `ε` tolerance).
    pub fn violations(&self, x: &[f64]) -> usize {
        (0..self.num_paths())
            .filter(|&i| self.a.row_dot(i, x) < self.lower[i])
            .count()
    }

    /// Modelling squared error of Eq. (12):
    /// `‖s(x) − s_pba‖² / ‖s_pba‖²`.
    pub fn mse(&self, x: &[f64]) -> f64 {
        metrics::mse(&self.model_slacks(x), &self.s_pba)
    }

    /// Relative error φ of Eq. (10): `‖s(x) − s_pba‖ / ‖s_pba‖`.
    pub fn phi(&self, x: &[f64]) -> f64 {
        self.mse(x).sqrt()
    }

    /// The row-subset subproblem (same columns) used by Algorithm 1.
    pub fn subproblem(&self, rows: &[usize]) -> FitProblem {
        FitProblem {
            a: self.a.select_rows(rows),
            b: rows.iter().map(|&r| self.b[r]).collect(),
            s_gba: rows.iter().map(|&r| self.s_gba[r]).collect(),
            s_pba: rows.iter().map(|&r| self.s_pba[r]).collect(),
            lower: rows.iter().map(|&r| self.lower[r]).collect(),
            columns: self.columns.clone(),
            penalty: self.penalty,
        }
    }

    /// Expands a column-space solution into a per-cell weight vector of
    /// length `num_cells` (gates not in the column space keep weight 0),
    /// ready for [`Sta::set_weights`].
    pub fn to_cell_weights(&self, x: &[f64], num_cells: usize) -> Vec<f64> {
        assert_eq!(x.len(), self.num_gates(), "solution dimension mismatch");
        let mut w = vec![0.0; num_cells];
        for (j, &cell) in self.columns.iter().enumerate() {
            w[cell.index()] = x[j];
        }
        w
    }
}

fn middle(p: &Path) -> &[CellId] {
    &p.cells[1..p.cells.len().saturating_sub(1).max(1)]
}

/// The cells of a path that carry fit weights: its combinational gates
/// plus the launching flip-flop (if it launches from one).
fn weighted_cells<'a>(p: &'a Path, sta: &'a Sta) -> impl Iterator<Item = &'a CellId> {
    let launch_is_ff = sta.netlist().cell(p.startpoint()).role == CellRole::Sequential;
    p.cells
        .first()
        .into_iter()
        .filter(move |_| launch_is_ff)
        .chain(middle(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GeneratorConfig;
    use sta::{select_critical_paths, DerateSet, Sdc};

    fn problem(seed: u64) -> (Sta, Vec<Path>, FitProblem) {
        let n = GeneratorConfig::small(seed).generate();
        let sta = Sta::new(n, Sdc::with_period(1200.0), DerateSet::standard()).unwrap();
        let paths = select_critical_paths(&sta, 5, 400, false);
        let p = FitProblem::build(&sta, &paths, 0.02, 4.0);
        (sta, paths, p)
    }

    #[test]
    fn zero_solution_reproduces_gba() {
        let (_, _, p) = problem(91);
        let x = vec![0.0; p.num_gates()];
        let slacks = p.model_slacks(&x);
        for (m, g) in slacks.iter().zip(p.gba_slacks()) {
            assert!((m - g).abs() < 1e-9, "x = 0 must reproduce GBA slacks");
        }
        // No constraint violations at x = 0 (GBA ≤ PBA slack by
        // construction).
        assert_eq!(p.violations(&x), 0);
    }

    #[test]
    fn rhs_is_nonpositive() {
        let (_, _, p) = problem(92);
        for (g, s) in p.gba_slacks().iter().zip(p.pba_slacks()) {
            assert!(g <= &(s + 1e-9), "GBA slack must not exceed PBA slack");
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (_, _, p) = problem(93);
        let n = p.num_gates();
        let x: Vec<f64> = (0..n).map(|j| -0.01 + 0.0003 * (j % 7) as f64).collect();
        let g = p.gradient(&x);
        let h = 1e-7;
        for j in (0..n).step_by(n.max(13) / 13) {
            let mut xp = x.clone();
            xp[j] += h;
            let mut xm = x.clone();
            xm[j] -= h;
            let fd = (p.objective(&xp) - p.objective(&xm)) / (2.0 * h);
            assert!(
                (g[j] - fd).abs() < 1e-3 * (1.0 + fd.abs()),
                "col {j}: analytic {} vs fd {}",
                g[j],
                fd
            );
        }
    }

    #[test]
    fn objective_decreases_along_negative_gradient() {
        let (_, _, p) = problem(94);
        let x = vec![0.0; p.num_gates()];
        let f0 = p.objective(&x);
        let g = p.gradient(&x);
        let gn: f64 = g.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(gn > 0.0, "x = 0 is not optimal (GBA has pessimism)");
        let step = 1e-6 / gn;
        let x1: Vec<f64> = x.iter().zip(&g).map(|(xi, gi)| xi - step * gi).collect();
        assert!(p.objective(&x1) < f0);
    }

    #[test]
    fn mse_zero_iff_perfect_fit() {
        let (_, _, p) = problem(95);
        let x0 = vec![0.0; p.num_gates()];
        let m0 = p.mse(&x0);
        assert!(m0 > 0.0, "GBA has nonzero error vs PBA");
        assert!((p.phi(&x0) - m0.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn subproblem_selects_rows() {
        let (_, _, p) = problem(96);
        let rows = vec![0, 2, 4];
        let sub = p.subproblem(&rows);
        assert_eq!(sub.num_paths(), 3);
        assert_eq!(sub.num_gates(), p.num_gates());
        let x = vec![0.01; p.num_gates()];
        for (si, &orig) in rows.iter().enumerate() {
            assert!((sub.model_slack(si, &x) - p.model_slack(orig, &x)).abs() < 1e-9);
        }
    }

    #[test]
    fn cell_weights_expand_to_netlist_space() {
        let (sta, _, p) = problem(97);
        let x: Vec<f64> = (0..p.num_gates()).map(|j| -(j as f64) * 1e-4).collect();
        let w = p.to_cell_weights(&x, sta.netlist().num_cells());
        assert_eq!(w.len(), sta.netlist().num_cells());
        for (j, &cell) in p.columns().iter().enumerate() {
            assert_eq!(w[cell.index()], x[j]);
        }
        // All other entries are zero.
        let nonzero = w.iter().filter(|v| **v != 0.0).count();
        assert!(nonzero <= p.num_gates());
    }

    #[test]
    fn violations_fire_when_too_optimistic() {
        let (_, _, p) = problem(98);
        // Hugely negative weights make the model far more optimistic than
        // PBA: constraints must fire.
        let x = vec![-0.9; p.num_gates()];
        assert!(p.violations(&x) > 0);
        // And the penalty makes that objective worse than a mild fit.
        let mild = vec![-0.005; p.num_gates()];
        assert!(p.objective(&x) > p.objective(&mild));
    }

    #[test]
    fn coefficients_are_derated_delays() {
        let (sta, paths, p) = problem(99);
        // Row 0's coefficients must equal d_j·λ_j of its weighted cells
        // (combinational gates plus the launch flip-flop, if any).
        let path = &paths[0];
        let (cols, vals) = p.matrix().row(0);
        let launch_is_ff =
            sta.netlist().cell(path.startpoint()).role == netlist::CellRole::Sequential;
        assert_eq!(cols.len(), path.num_gates() + usize::from(launch_is_ff));
        for (&c, &v) in cols.iter().zip(vals) {
            let cell = p.columns()[c as usize];
            let expect = sta.gate_delay(cell) * sta.gate_derate(cell);
            assert!((v - expect).abs() < 1e-9);
        }
    }
}
