//! The mGBA fitting problem (Eq. (5)–(9) of the paper).
//!
//! # Formulation
//!
//! The paper attaches a weighting factor `x_j` to every gate and fits the
//! weighted GBA path slacks to the golden PBA slacks. Written as the
//! correction form (see DESIGN.md: the weights start at 0 and the optimal
//! solution is sparse around 0, so `x_j` corrects the derate as
//! `λ_j·(1 + x_j)`), the model slack of path `i` is
//!
//! ```text
//! s_i(x)  =  s_gba,i − (A·x)_i ,      a_ij = δ_ij · d_j · λ_j
//! ```
//!
//! and the fit is the constrained least squares of Eq. (5),
//!
//! ```text
//! min ‖s(x) − s_pba‖₂   s.t.  s_i(x) ≤ s_pba,i + ε·|s_pba,i| ,
//! ```
//!
//! which in terms of `r = A·x − b` with `b = s_gba − s_pba` reads
//! `min ‖r‖₂` subject to `(A·x)_i ≥ b_i − ε·|s_pba,i|` — the fitted slack
//! must stay on the pessimistic side of PBA (within tolerance). The
//! constraints are folded into the objective with the one-sided quadratic
//! penalty of Eq. (6).

use netlist::{CellId, CellRole};
use parallel::Parallelism;
use sparsela::{CsrBuilder, CsrMatrix};
use sta::{gba_path_timing_batch, pba_timing_batch, Path, Sta};
use std::collections::HashMap;
use std::sync::OnceLock;

/// The assembled least-squares-with-penalty problem.
#[derive(Debug, Clone)]
pub struct FitProblem {
    a: CsrMatrix,
    /// Lazily cached transpose `Aᵀ` — the deterministic full-gradient
    /// path is a column-parallel product with it.
    at: OnceLock<CsrMatrix>,
    /// Right-hand side `b_i = s_gba,i − s_pba,i` (≤ 0 up to noise: GBA is
    /// never less pessimistic than PBA).
    b: Vec<f64>,
    s_gba: Vec<f64>,
    s_pba: Vec<f64>,
    /// Per-row lower bound on `(A·x)_i` from the Eq. (5) constraint.
    lower: Vec<f64>,
    /// Column → netlist cell mapping.
    columns: Vec<CellId>,
    /// Constraint tolerance `ε` of Eq. (5); kept so dirty-row patching
    /// can recompute `lower` exactly as construction did.
    epsilon: f64,
    penalty: f64,
    /// Thread width of the full-matrix kernels (`objective`, `gradient`,
    /// `model_slacks`, …). Every kernel is bit-identical for every
    /// value, so this only affects wall time.
    par: Parallelism,
}

impl FitProblem {
    /// Builds the problem from an engine (with **zero weights** — the
    /// matrix encodes original-GBA derates) and a set of selected paths.
    ///
    /// # Panics
    ///
    /// Panics if any selected path's gate carries a non-zero weight (the
    /// problem must be assembled against original GBA).
    pub fn build(sta: &Sta, paths: &[Path], epsilon: f64, penalty: f64) -> Self {
        Self::build_par(sta, paths, epsilon, penalty, parallel::global())
    }

    /// [`Self::build`] with an explicit thread width.
    ///
    /// Column discovery stays serial — insertion order defines the
    /// column numbering. Row construction and the per-path GBA/PBA
    /// retimes fan out over `par`; every per-path result is an
    /// independent function of `(sta, path)` written to its own row, so
    /// the assembled problem is identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if any selected path's gate carries a non-zero weight (the
    /// problem must be assembled against original GBA).
    pub fn build_par(
        sta: &Sta,
        paths: &[Path],
        epsilon: f64,
        penalty: f64,
        par: Parallelism,
    ) -> Self {
        let _span = obs::span("build");
        let mut col_of: HashMap<CellId, usize> = HashMap::new();
        let mut columns: Vec<CellId> = Vec::new();
        // First pass: discover the column space — combinational gates on
        // the selected paths plus launching flip-flops (their clock-to-Q
        // arc is a weighted delay unit too, which lets the fit absorb
        // launch-specific CRPR pessimism).
        for p in paths {
            for &c in weighted_cells(p, sta) {
                assert_eq!(
                    sta.gate_weight(c),
                    0.0,
                    "FitProblem must be built against original GBA (zero weights)"
                );
                col_of.entry(c).or_insert_with(|| {
                    columns.push(c);
                    columns.len() - 1
                });
            }
        }
        let pba_t = pba_timing_batch(sta, paths, par);
        let gba_t = gba_path_timing_batch(sta, paths, par);
        let rows = parallel::par_map(par, paths, |p| {
            weighted_cells(p, sta)
                .map(|&c| (col_of[&c], sta.gate_delay(c) * sta.gate_derate(c)))
                .collect::<Vec<(usize, f64)>>()
        });
        let _assemble_span = obs::span("assemble");
        let mut builder = CsrBuilder::new(columns.len());
        let mut b = Vec::with_capacity(paths.len());
        let mut s_gba = Vec::with_capacity(paths.len());
        let mut s_pba = Vec::with_capacity(paths.len());
        let mut lower = Vec::with_capacity(paths.len());
        for ((row, gba_timing), pba_timing) in rows.iter().zip(&gba_t).zip(&pba_t) {
            builder.push_row(row);
            let gba = gba_timing.slack;
            let pba = pba_timing.slack;
            b.push(gba - pba);
            lower.push((gba - pba) - epsilon * pba.abs());
            s_gba.push(gba);
            s_pba.push(pba);
        }
        let a = builder.build();
        obs::counter_add("mgba.fit.rows", a.num_rows() as u64);
        obs::counter_add("mgba.fit.nnz", a.nnz() as u64);
        Self {
            a,
            at: OnceLock::new(),
            b,
            s_gba,
            s_pba,
            lower,
            columns,
            epsilon,
            penalty,
            par,
        }
    }

    /// Builds a problem from raw parts (testing and synthetic workloads).
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths disagree with the matrix shape.
    pub fn from_parts(
        a: CsrMatrix,
        s_gba: Vec<f64>,
        s_pba: Vec<f64>,
        columns: Vec<CellId>,
        epsilon: f64,
        penalty: f64,
    ) -> Self {
        assert_eq!(a.num_rows(), s_gba.len());
        assert_eq!(a.num_rows(), s_pba.len());
        assert_eq!(a.num_cols(), columns.len());
        let b: Vec<f64> = s_gba.iter().zip(&s_pba).map(|(g, p)| g - p).collect();
        let lower: Vec<f64> = b
            .iter()
            .zip(&s_pba)
            .map(|(bi, pi)| bi - epsilon * pi.abs())
            .collect();
        Self {
            a,
            at: OnceLock::new(),
            b,
            s_gba,
            s_pba,
            lower,
            columns,
            epsilon,
            penalty,
            par: parallel::global(),
        }
    }

    /// Sets the thread width used by the full-matrix kernels (results
    /// are bit-identical for every width).
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// The thread width used by the full-matrix kernels.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// The sparse path×gate matrix `A`.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.a
    }

    /// The transpose `Aᵀ`, built on first use and cached. Iterative
    /// full-matrix solvers use it for deterministic parallel `Aᵀ·y`
    /// products (each output entry is one fixed-order column dot).
    pub fn matrix_t(&self) -> &CsrMatrix {
        self.at.get_or_init(|| self.a.transpose())
    }

    /// Number of path rows (`m` in the paper).
    pub fn num_paths(&self) -> usize {
        self.a.num_rows()
    }

    /// Number of gate columns (`n` in the paper).
    pub fn num_gates(&self) -> usize {
        self.a.num_cols()
    }

    /// Column → cell mapping.
    pub fn columns(&self) -> &[CellId] {
        &self.columns
    }

    /// Golden PBA slacks of the selected paths.
    pub fn pba_slacks(&self) -> &[f64] {
        &self.s_pba
    }

    /// Original GBA slacks of the selected paths.
    pub fn gba_slacks(&self) -> &[f64] {
        &self.s_gba
    }

    /// Model slack of path `i` under weights `x`: `s_gba,i − (A·x)_i`.
    pub fn model_slack(&self, i: usize, x: &[f64]) -> f64 {
        self.s_gba[i] - self.a.row_dot(i, x)
    }

    /// All model slacks under `x` (row-parallel, order-exact).
    pub fn model_slacks(&self, x: &[f64]) -> Vec<f64> {
        let mut s = vec![0.0; self.num_paths()];
        parallel::par_fill(self.par, &mut s, |i| self.model_slack(i, x));
        s
    }

    /// Penalized objective value of Eq. (6).
    ///
    /// Summed over fixed-size row blocks folded in block order, so the
    /// value is bit-identical for every thread count.
    pub fn objective(&self, x: &[f64]) -> f64 {
        parallel::par_sum(self.par, self.num_paths(), |i| {
            let ax = self.a.row_dot(i, x);
            let r = ax - self.b[i];
            let v = ax - self.lower[i];
            r * r + if v < 0.0 { self.penalty * v * v } else { 0.0 }
        })
    }

    /// Full gradient of the penalized objective.
    pub fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let mut coeffs = Vec::new();
        let mut g = Vec::new();
        self.gradient_into(x, &mut coeffs, &mut g);
        g
    }

    /// Full gradient into caller-owned buffers (no per-call allocation
    /// once the buffers have grown to size — the hot path of the
    /// full-matrix iterative solvers).
    ///
    /// Two deterministic passes: per-row residual coefficients
    /// `c_i = 2(aᵢ·x − b_i) + 2w·min(aᵢ·x − l_i, 0)` fan out over rows,
    /// then `g = Aᵀ·c` fans out over columns of the cached transpose —
    /// each output entry one fixed-order dot product, so the gradient is
    /// bit-identical for every thread count.
    pub fn gradient_into(&self, x: &[f64], coeffs: &mut Vec<f64>, g: &mut Vec<f64>) {
        coeffs.clear();
        coeffs.resize(self.num_paths(), 0.0);
        parallel::par_fill(self.par, coeffs, |i| {
            let ax = self.a.row_dot(i, x);
            let mut c = 2.0 * (ax - self.b[i]);
            let v = ax - self.lower[i];
            if v < 0.0 {
                c += 2.0 * self.penalty * v;
            }
            c
        });
        let at = self.matrix_t();
        g.clear();
        g.resize(self.num_gates(), 0.0);
        parallel::par_fill(self.par, g, |j| at.row_dot(j, coeffs));
    }

    /// Adds row `i`'s gradient contribution into `g` (the kernel of the
    /// stochastic solver).
    #[inline]
    pub fn accumulate_row_gradient(&self, i: usize, x: &[f64], g: &mut [f64]) {
        let ax = self.a.row_dot(i, x);
        let mut coeff = 2.0 * (ax - self.b[i]);
        let v = ax - self.lower[i];
        if v < 0.0 {
            coeff += 2.0 * self.penalty * v;
        }
        self.a.scatter_row(i, coeff, g);
    }

    /// Number of paths violating the Eq. (5) constraint under `x` (the
    /// model is more optimistic than PBA beyond the `ε` tolerance).
    pub fn violations(&self, x: &[f64]) -> usize {
        parallel::par_block_reduce(
            self.par,
            self.num_paths(),
            parallel::REDUCE_BLOCK,
            |range| {
                range
                    .filter(|&i| self.a.row_dot(i, x) < self.lower[i])
                    .count()
            },
            |a, b| a + b,
        )
    }

    /// Modelling squared error of Eq. (12):
    /// `‖s(x) − s_pba‖² / ‖s_pba‖²` (blocked sums, bit-identical for
    /// every thread count; same semantics as `metrics::mse`).
    pub fn mse(&self, x: &[f64]) -> f64 {
        let m = self.num_paths();
        let num = parallel::par_sum(self.par, m, |i| {
            let d = self.model_slack(i, x) - self.s_pba[i];
            d * d
        });
        let den = parallel::par_sum(self.par, m, |i| self.s_pba[i] * self.s_pba[i]);
        if den > 0.0 {
            num / den
        } else if num > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }

    /// Relative error φ of Eq. (10): `‖s(x) − s_pba‖ / ‖s_pba‖`.
    pub fn phi(&self, x: &[f64]) -> f64 {
        self.mse(x).sqrt()
    }

    /// The row-subset subproblem (same columns) used by Algorithm 1.
    pub fn subproblem(&self, rows: &[usize]) -> FitProblem {
        FitProblem {
            a: self.a.select_rows(rows),
            at: OnceLock::new(),
            b: rows.iter().map(|&r| self.b[r]).collect(),
            s_gba: rows.iter().map(|&r| self.s_gba[r]).collect(),
            s_pba: rows.iter().map(|&r| self.s_pba[r]).collect(),
            lower: rows.iter().map(|&r| self.lower[r]).collect(),
            columns: self.columns.clone(),
            epsilon: self.epsilon,
            penalty: self.penalty,
            par: self.par,
        }
    }

    /// Row indices whose fit coefficients or slacks may have moved after
    /// an incremental STA update that re-evaluated `dirty_cells`
    /// ([`Sta::last_touched`]).
    ///
    /// Row `i` is dirty iff its invalidation set — `paths[i].cells` plus
    /// the launch and capture clock paths — intersects `dirty_cells`.
    /// The rule is exact because path timing ([`pba_timing_batch`] /
    /// [`gba_path_timing_batch`]) reads only per-cell cached quantities
    /// of those cells: gate delays, slews, and clock arrivals of the
    /// path's own cells, plus clock-network gate delays through the CRPR
    /// credit. `paths` must be the set the problem was built from.
    ///
    /// # Panics
    ///
    /// Panics if `paths.len()` differs from the built row count.
    pub fn dirty_rows(&self, sta: &Sta, paths: &[Path], dirty_cells: &[CellId]) -> Vec<usize> {
        assert_eq!(
            paths.len(),
            self.num_paths(),
            "dirty_rows: path set must match the built problem"
        );
        let mut mask = vec![false; sta.netlist().num_cells()];
        for &c in dirty_cells {
            mask[c.index()] = true;
        }
        let hit = |c: &CellId| mask[c.index()];
        (0..paths.len())
            .filter(|&i| {
                let p = &paths[i];
                p.cells.iter().any(hit)
                    || sta.clock_path(p.startpoint()).iter().any(hit)
                    || sta.clock_path(p.endpoint).iter().any(hit)
            })
            .collect()
    }

    /// Rebuilds only the given rows in place after an incremental STA
    /// update, leaving every other row — and the cached transpose entries
    /// of every unchanged row — untouched. The dirty paths are retimed
    /// (GBA and PBA) and their coefficients recomputed with the same
    /// expressions as [`Self::build_par`], so a patched problem is
    /// bit-identical to rebuilding from scratch over the same paths.
    ///
    /// The sparsity pattern is structural (path → weighted cells) and a
    /// resize never alters it; the pattern is asserted unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `paths` differs from the built path set, if any patched
    /// row's weighted cell carries a non-zero weight (patching, like
    /// building, runs against original GBA), or if a row's sparsity
    /// pattern changed.
    pub fn patch_rows(&mut self, sta: &Sta, paths: &[Path], rows: &[usize]) {
        let _span = obs::span("patch");
        assert_eq!(
            paths.len(),
            self.num_paths(),
            "patch_rows: path set must match the built problem"
        );
        if rows.is_empty() {
            return;
        }
        let col_of: HashMap<CellId, usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(j, &c)| (c, j))
            .collect();
        let dirty_paths: Vec<Path> = rows.iter().map(|&r| paths[r].clone()).collect();
        for p in &dirty_paths {
            for &c in weighted_cells(p, sta) {
                assert_eq!(
                    sta.gate_weight(c),
                    0.0,
                    "FitProblem must be patched against original GBA (zero weights)"
                );
            }
        }
        let pba_t = pba_timing_batch(sta, &dirty_paths, self.par);
        let gba_t = gba_path_timing_batch(sta, &dirty_paths, self.par);
        let new_rows = parallel::par_map(self.par, &dirty_paths, |p| {
            weighted_cells(p, sta)
                .map(|&c| (col_of[&c] as u32, sta.gate_delay(c) * sta.gate_derate(c)))
                .collect::<Vec<(u32, f64)>>()
        });
        for (k, &r) in rows.iter().enumerate() {
            let new = &new_rows[k];
            let (cols, _) = self.a.row(r);
            assert!(
                cols.len() == new.len() && cols.iter().zip(new).all(|(s, (c, _))| s == c),
                "patch_rows: sparsity pattern changed on row {r}"
            );
            let cols = cols.to_vec();
            let vals: Vec<f64> = new.iter().map(|&(_, v)| v).collect();
            self.a.set_row_values(r, &vals);
            if let Some(at) = self.at.get_mut() {
                at.patch_transposed_row(r, &cols, &vals);
            }
            let gba = gba_t[k].slack;
            let pba = pba_t[k].slack;
            self.b[r] = gba - pba;
            self.lower[r] = (gba - pba) - self.epsilon * pba.abs();
            self.s_gba[r] = gba;
            self.s_pba[r] = pba;
        }
        obs::counter_add("mgba.fit.rows_patched", rows.len() as u64);
    }

    /// Expands a column-space solution into a per-cell weight vector of
    /// length `num_cells` (gates not in the column space keep weight 0),
    /// ready for [`Sta::set_weights`].
    pub fn to_cell_weights(&self, x: &[f64], num_cells: usize) -> Vec<f64> {
        assert_eq!(x.len(), self.num_gates(), "solution dimension mismatch");
        let mut w = vec![0.0; num_cells];
        for (j, &cell) in self.columns.iter().enumerate() {
            w[cell.index()] = x[j];
        }
        w
    }
}

fn middle(p: &Path) -> &[CellId] {
    &p.cells[1..p.cells.len().saturating_sub(1).max(1)]
}

/// The cells of a path that carry fit weights: its combinational gates
/// plus the launching flip-flop (if it launches from one).
fn weighted_cells<'a>(p: &'a Path, sta: &'a Sta) -> impl Iterator<Item = &'a CellId> {
    let launch_is_ff = sta.netlist().cell(p.startpoint()).role == CellRole::Sequential;
    p.cells
        .first()
        .into_iter()
        .filter(move |_| launch_is_ff)
        .chain(middle(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GeneratorConfig;
    use sta::{select_critical_paths, DerateSet, Sdc};

    fn problem(seed: u64) -> (Sta, Vec<Path>, FitProblem) {
        let n = GeneratorConfig::small(seed).generate();
        let sta = Sta::new(n, Sdc::with_period(1200.0), DerateSet::standard()).unwrap();
        let paths = select_critical_paths(&sta, 5, 400, false);
        let p = FitProblem::build(&sta, &paths, 0.02, 4.0);
        (sta, paths, p)
    }

    #[test]
    fn zero_solution_reproduces_gba() {
        let (_, _, p) = problem(91);
        let x = vec![0.0; p.num_gates()];
        let slacks = p.model_slacks(&x);
        for (m, g) in slacks.iter().zip(p.gba_slacks()) {
            assert!((m - g).abs() < 1e-9, "x = 0 must reproduce GBA slacks");
        }
        // No constraint violations at x = 0 (GBA ≤ PBA slack by
        // construction).
        assert_eq!(p.violations(&x), 0);
    }

    #[test]
    fn rhs_is_nonpositive() {
        let (_, _, p) = problem(92);
        for (g, s) in p.gba_slacks().iter().zip(p.pba_slacks()) {
            assert!(g <= &(s + 1e-9), "GBA slack must not exceed PBA slack");
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (_, _, p) = problem(93);
        let n = p.num_gates();
        let x: Vec<f64> = (0..n).map(|j| -0.01 + 0.0003 * (j % 7) as f64).collect();
        let g = p.gradient(&x);
        let h = 1e-7;
        for j in (0..n).step_by(n.max(13) / 13) {
            let mut xp = x.clone();
            xp[j] += h;
            let mut xm = x.clone();
            xm[j] -= h;
            let fd = (p.objective(&xp) - p.objective(&xm)) / (2.0 * h);
            assert!(
                (g[j] - fd).abs() < 1e-3 * (1.0 + fd.abs()),
                "col {j}: analytic {} vs fd {}",
                g[j],
                fd
            );
        }
    }

    #[test]
    fn objective_decreases_along_negative_gradient() {
        let (_, _, p) = problem(94);
        let x = vec![0.0; p.num_gates()];
        let f0 = p.objective(&x);
        let g = p.gradient(&x);
        let gn: f64 = g.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(gn > 0.0, "x = 0 is not optimal (GBA has pessimism)");
        let step = 1e-6 / gn;
        let x1: Vec<f64> = x.iter().zip(&g).map(|(xi, gi)| xi - step * gi).collect();
        assert!(p.objective(&x1) < f0);
    }

    #[test]
    fn mse_zero_iff_perfect_fit() {
        let (_, _, p) = problem(95);
        let x0 = vec![0.0; p.num_gates()];
        let m0 = p.mse(&x0);
        assert!(m0 > 0.0, "GBA has nonzero error vs PBA");
        assert!((p.phi(&x0) - m0.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn subproblem_selects_rows() {
        let (_, _, p) = problem(96);
        let rows = vec![0, 2, 4];
        let sub = p.subproblem(&rows);
        assert_eq!(sub.num_paths(), 3);
        assert_eq!(sub.num_gates(), p.num_gates());
        let x = vec![0.01; p.num_gates()];
        for (si, &orig) in rows.iter().enumerate() {
            assert!((sub.model_slack(si, &x) - p.model_slack(orig, &x)).abs() < 1e-9);
        }
    }

    #[test]
    fn cell_weights_expand_to_netlist_space() {
        let (sta, _, p) = problem(97);
        let x: Vec<f64> = (0..p.num_gates()).map(|j| -(j as f64) * 1e-4).collect();
        let w = p.to_cell_weights(&x, sta.netlist().num_cells());
        assert_eq!(w.len(), sta.netlist().num_cells());
        for (j, &cell) in p.columns().iter().enumerate() {
            assert_eq!(w[cell.index()], x[j]);
        }
        // All other entries are zero.
        let nonzero = w.iter().filter(|v| **v != 0.0).count();
        assert!(nonzero <= p.num_gates());
    }

    #[test]
    fn violations_fire_when_too_optimistic() {
        let (_, _, p) = problem(98);
        // Hugely negative weights make the model far more optimistic than
        // PBA: constraints must fire.
        let x = vec![-0.9; p.num_gates()];
        assert!(p.violations(&x) > 0);
        // And the penalty makes that objective worse than a mild fit.
        let mild = vec![-0.005; p.num_gates()];
        assert!(p.objective(&x) > p.objective(&mild));
    }

    #[test]
    fn build_and_kernels_bit_identical_across_thread_counts() {
        let n = GeneratorConfig::small(90).generate();
        let sta = Sta::new(n, Sdc::with_period(1200.0), DerateSet::standard()).unwrap();
        let paths = select_critical_paths(&sta, 20, usize::MAX, false);
        assert!(paths.len() > 10);
        let serial = FitProblem::build_par(&sta, &paths, 0.02, 4.0, Parallelism::serial());
        let x: Vec<f64> = (0..serial.num_gates())
            .map(|j| -0.03 + 0.001 * (j % 11) as f64)
            .collect();
        for threads in [2, 4] {
            let par = FitProblem::build_par(&sta, &paths, 0.02, 4.0, Parallelism::new(threads));
            assert_eq!(par.matrix(), serial.matrix(), "threads={threads}");
            assert_eq!(par.gba_slacks(), serial.gba_slacks());
            assert_eq!(par.pba_slacks(), serial.pba_slacks());
            assert_eq!(par.columns(), serial.columns());
            // Full-matrix kernels: bit-identical, not just close.
            assert_eq!(par.objective(&x).to_bits(), serial.objective(&x).to_bits());
            assert_eq!(par.gradient(&x), serial.gradient(&x));
            assert_eq!(par.model_slacks(&x), serial.model_slacks(&x));
            assert_eq!(par.mse(&x).to_bits(), serial.mse(&x).to_bits());
            assert_eq!(par.violations(&x), serial.violations(&x));
        }
    }

    #[test]
    fn gradient_into_reuses_buffers_and_matches_gradient() {
        let (_, _, p) = problem(89);
        let x: Vec<f64> = (0..p.num_gates())
            .map(|j| -0.002 * (j % 5) as f64)
            .collect();
        let mut coeffs = Vec::new();
        let mut g = Vec::new();
        p.gradient_into(&x, &mut coeffs, &mut g);
        assert_eq!(g, p.gradient(&x));
        let cap_c = coeffs.capacity();
        let cap_g = g.capacity();
        p.gradient_into(&x, &mut coeffs, &mut g);
        assert_eq!(coeffs.capacity(), cap_c, "no reallocation on reuse");
        assert_eq!(g.capacity(), cap_g, "no reallocation on reuse");
    }

    #[test]
    fn transpose_cache_matches_fresh_transpose() {
        let (_, _, p) = problem(88);
        assert_eq!(*p.matrix_t(), p.matrix().transpose());
        // Subproblems carry their own (consistent) cache.
        let sub = p.subproblem(&[0, 1, 3]);
        assert_eq!(*sub.matrix_t(), sub.matrix().transpose());
    }

    /// First combinational gate on a selected path that the library can
    /// upsize, together with the upsized variant.
    fn resizable_on_path(sta: &Sta, paths: &[Path]) -> (CellId, netlist::LibCellId) {
        paths
            .iter()
            .flat_map(|p| p.cells.iter())
            .find_map(|&c| {
                let cell = sta.netlist().cell(c);
                if cell.role == CellRole::Combinational {
                    sta.netlist()
                        .library()
                        .upsized(cell.lib_cell)
                        .map(|up| (c, up))
                } else {
                    None
                }
            })
            .expect("a resizable path gate exists")
    }

    #[test]
    fn patched_rows_equal_fresh_rebuild_bit_for_bit() {
        let (mut sta, paths, mut p) = problem(85);
        // Materialize the transpose cache *before* patching so the patch
        // has to keep it valid entry-by-entry rather than rebuilding it.
        let _ = p.matrix_t();
        let (victim, up) = resizable_on_path(&sta, &paths);
        sta.resize_cell(victim, up).unwrap();
        let touched = sta.last_touched().to_vec();
        let dirty = p.dirty_rows(&sta, &paths, &touched);
        assert!(
            !dirty.is_empty(),
            "resizing a path gate must dirty the rows through it"
        );
        assert!(
            dirty.len() < paths.len(),
            "a single resize must not invalidate every row"
        );
        p.patch_rows(&sta, &paths, &dirty);

        let fresh = FitProblem::build(&sta, &paths, 0.02, 4.0);
        assert_eq!(p.matrix(), fresh.matrix());
        assert_eq!(*p.matrix_t(), fresh.matrix().transpose());
        assert_eq!(p.gba_slacks(), fresh.gba_slacks());
        assert_eq!(p.pba_slacks(), fresh.pba_slacks());
        assert_eq!(p.columns(), fresh.columns());
        // b/lower agree too: the objective folds both, compare its bits
        // at a point with active constraint violations.
        let x: Vec<f64> = (0..p.num_gates())
            .map(|j| -0.2 + 0.01 * (j % 9) as f64)
            .collect();
        assert!(
            p.violations(&x) > 0,
            "probe point must exercise the penalty"
        );
        assert_eq!(p.objective(&x).to_bits(), fresh.objective(&x).to_bits());
        assert_eq!(p.gradient(&x), fresh.gradient(&x));
    }

    #[test]
    fn dirty_rows_empty_when_no_path_cell_is_touched() {
        let (sta, paths, p) = problem(86);
        assert!(p.dirty_rows(&sta, &paths, &[]).is_empty());
        let on_some_path = |c: CellId| {
            paths.iter().any(|pa| {
                pa.cells.contains(&c)
                    || sta.clock_path(pa.startpoint()).contains(&c)
                    || sta.clock_path(pa.endpoint).contains(&c)
            })
        };
        let off = sta
            .netlist()
            .cells()
            .map(|(id, _)| id)
            .find(|&id| !on_some_path(id))
            .expect("an off-path cell exists");
        assert!(p.dirty_rows(&sta, &paths, &[off]).is_empty());
        // And patching nothing is a no-op.
        let mut q = p.clone();
        q.patch_rows(&sta, &paths, &[]);
        assert_eq!(q.matrix(), p.matrix());
    }

    #[test]
    fn clock_path_cells_dirty_their_rows() {
        let (sta, paths, p) = problem(87);
        // A clock buffer never appears in `path.cells`, yet its gate
        // delay feeds the CRPR credit and the capture clock arrival: rows
        // whose launch or capture clock path runs through it are dirty.
        let buf = paths
            .iter()
            .find_map(|pa| {
                sta.clock_path(pa.startpoint())
                    .iter()
                    .copied()
                    .find(|&c| sta.netlist().cell(c).role == CellRole::ClockBuffer)
            })
            .expect("a clock buffer feeds some selected launch flip-flop");
        let dirty = p.dirty_rows(&sta, &paths, &[buf]);
        assert!(!dirty.is_empty());
        for (i, pa) in paths.iter().enumerate() {
            let hit = pa.cells.contains(&buf)
                || sta.clock_path(pa.startpoint()).contains(&buf)
                || sta.clock_path(pa.endpoint).contains(&buf);
            assert_eq!(dirty.contains(&i), hit, "row {i}");
        }
    }

    #[test]
    fn coefficients_are_derated_delays() {
        let (sta, paths, p) = problem(99);
        // Row 0's coefficients must equal d_j·λ_j of its weighted cells
        // (combinational gates plus the launch flip-flop, if any).
        let path = &paths[0];
        let (cols, vals) = p.matrix().row(0);
        let launch_is_ff =
            sta.netlist().cell(path.startpoint()).role == netlist::CellRole::Sequential;
        assert_eq!(cols.len(), path.num_gates() + usize::from(launch_is_ff));
        for (&c, &v) in cols.iter().zip(vals) {
            let cell = p.columns()[c as usize];
            let expect = sta.gate_delay(cell) * sta.gate_derate(cell);
            assert!((v - expect).abs() < 1e-9);
        }
    }
}
