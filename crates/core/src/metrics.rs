//! Accuracy metrics of the paper's evaluation.

use serde::{Deserialize, Serialize};

/// Relative-error threshold for a "good" path (Table 3: 5%).
pub const PASS_REL_TOL: f64 = 0.05;
/// Absolute-error threshold for a "good" path (Table 3: 5 ps).
pub const PASS_ABS_TOL: f64 = 5.0;

/// Modelling squared error of Eq. (12):
/// `‖model − golden‖₂² / ‖golden‖₂²`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn mse(model: &[f64], golden: &[f64]) -> f64 {
    assert_eq!(model.len(), golden.len(), "mse: length mismatch");
    let num: f64 = model
        .iter()
        .zip(golden)
        .map(|(m, g)| (m - g) * (m - g))
        .sum();
    let den: f64 = golden.iter().map(|g| g * g).sum();
    if den > 0.0 {
        num / den
    } else if num > 0.0 {
        f64::INFINITY
    } else {
        0.0
    }
}

/// Relative error φ of Eq. (10): `sqrt(mse)`.
pub fn phi(model: &[f64], golden: &[f64]) -> f64 {
    mse(model, golden).sqrt()
}

/// Whether one path's slack is "good" per the paper's engineers' rule:
/// relative error below 5% **or** absolute error below 5 ps.
pub fn path_passes(model_slack: f64, golden_slack: f64) -> bool {
    let abs_err = (model_slack - golden_slack).abs();
    if abs_err < PASS_ABS_TOL {
        return true;
    }
    if golden_slack.abs() > 0.0 {
        abs_err / golden_slack.abs() < PASS_REL_TOL
    } else {
        false
    }
}

/// Pass-ratio summary over a path population (Table 3's φ = n/N).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PassRatio {
    /// Paths meeting the accuracy rule.
    pub passing: usize,
    /// Paths considered.
    pub total: usize,
}

impl PassRatio {
    /// Computes the ratio over matched model/golden slack pairs.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn compute(model: &[f64], golden: &[f64]) -> Self {
        assert_eq!(model.len(), golden.len(), "pass ratio: length mismatch");
        let passing = model
            .iter()
            .zip(golden)
            .filter(|(m, g)| path_passes(**m, **g))
            .count();
        Self {
            passing,
            total: model.len(),
        }
    }

    /// The ratio in `[0, 1]`; `0` for an empty population.
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.passing as f64 / self.total as f64
        }
    }

    /// The ratio as a percentage.
    pub fn percent(&self) -> f64 {
        100.0 * self.ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_matches_formula() {
        let golden = [3.0, 4.0];
        let model = [3.0, 5.0];
        assert!((mse(&model, &golden) - 1.0 / 25.0).abs() < 1e-12);
        assert!((phi(&model, &golden) - 0.2).abs() < 1e-12);
        assert_eq!(mse(&golden, &golden), 0.0);
        assert_eq!(mse(&[1.0], &[0.0]), f64::INFINITY);
        assert_eq!(mse(&[0.0], &[0.0]), 0.0);
    }

    #[test]
    fn pass_rule_absolute_branch() {
        // 4 ps absolute error always passes, even at tiny slack.
        assert!(path_passes(4.0, 0.5));
        assert!(path_passes(-102.0, -100.0));
    }

    #[test]
    fn pass_rule_relative_branch() {
        // 4% of a large slack passes; 6% fails.
        assert!(path_passes(-1040.0, -1000.0));
        assert!(!path_passes(-1060.0, -1000.0));
    }

    #[test]
    fn pass_rule_zero_golden() {
        assert!(path_passes(4.9, 0.0)); // absolute branch
        assert!(!path_passes(5.1, 0.0)); // neither branch
    }

    #[test]
    fn pass_ratio_aggregates() {
        let golden = [-1000.0, -1000.0, 10.0];
        let model = [-1040.0, -1200.0, 11.0];
        let pr = PassRatio::compute(&model, &golden);
        assert_eq!(pr.passing, 2);
        assert_eq!(pr.total, 3);
        assert!((pr.percent() - 66.666).abs() < 0.01);
        assert_eq!(
            PassRatio {
                passing: 0,
                total: 0
            }
            .ratio(),
            0.0
        );
    }
}
