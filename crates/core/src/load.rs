//! Design loading shared by every front end (CLI subcommands, the
//! `server` daemon, benches): generator specs, netlist files, automatic
//! clock-period derivation, and engine construction.
//!
//! A "design spec" is either one of the paper's benchmark names
//! (`D1`..`D10`), a seeded small generator instance (`small:SEED`), or a
//! path to a netlist file in the native text format (`.nl`) or the
//! structural-Verilog subset (`.v`), auto-detected by content.

use crate::error::MgbaError;
use netlist::{DesignSpec, GeneratorConfig, Netlist};
use sta::{DerateSet, Sdc, Sta};

/// Parses a generator spec (`D1`..`D10` or `small:SEED`) into a netlist.
///
/// # Errors
///
/// Returns [`MgbaError::Usage`] for unknown specs or bad seeds.
pub fn parse_design(spec: &str) -> Result<Netlist, MgbaError> {
    if let Some(seed) = spec.strip_prefix("small:") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| MgbaError::Usage(format!("bad seed in `{spec}`")))?;
        return Ok(GeneratorConfig::small(seed).generate());
    }
    DesignSpec::all()
        .into_iter()
        .find(|d| d.to_string() == spec)
        .map(DesignSpec::generate)
        .ok_or_else(|| {
            MgbaError::Usage(format!(
                "unknown design `{spec}` (want D1..D10 or small:SEED)"
            ))
        })
}

/// Reads and parses a netlist file (native text, structural Verilog, or
/// EDIF 2.0.0, auto-detected by content).
///
/// # Errors
///
/// Returns [`MgbaError::Io`] when the file cannot be read and
/// [`MgbaError::Parse`] when it does not parse.
pub fn load_netlist_file(path: &str) -> Result<Netlist, MgbaError> {
    let _span = obs::span("load");
    if faultinject::fire("load.netlist").is_some() {
        return Err(MgbaError::Internal(format!(
            "failpoint `load.netlist`: injected failure loading `{path}`"
        )));
    }
    let text = std::fs::read_to_string(path).map_err(|e| MgbaError::io(path, e))?;
    let head = text.trim_start();
    if head.starts_with("module") {
        Ok(netlist::parse_verilog(&text)?)
    } else if head.starts_with("(edif") || head.starts_with("(EDIF") {
        let (netlist, _sources) = ingest::import_edif(&text)?;
        Ok(netlist)
    } else {
        Ok(netlist::parse_netlist(&text)?)
    }
}

/// Accepts either a generator spec (`D3`, `small:7`) or a netlist file.
///
/// # Errors
///
/// Propagates [`parse_design`] / [`load_netlist_file`] errors.
pub fn load_design_or_file(spec: &str) -> Result<Netlist, MgbaError> {
    let looks_like_spec =
        spec.starts_with("small:") || DesignSpec::all().iter().any(|d| d.to_string() == spec);
    if looks_like_spec {
        let _span = obs::span("load");
        parse_design(spec)
    } else {
        load_netlist_file(spec)
    }
}

/// Builds the timing engine with the standard derate set.
///
/// # Errors
///
/// Returns [`MgbaError::Parse`] when the netlist fails structural
/// validation (e.g. combinational cycles).
pub fn build_engine(netlist: Netlist, period: f64) -> Result<Sta, MgbaError> {
    let _span = obs::span("sta_build");
    Ok(Sta::new(
        netlist,
        Sdc::with_period(period),
        DerateSet::standard(),
    )?)
}

/// Picks a clock period that leaves the design with moderate setup
/// violations (so a calibration fit has paths to work with): probe WNS at
/// a relaxed period — slack shifts 1:1 with the period — then tighten by
/// a tenth of the worst data arrival.
///
/// # Errors
///
/// Returns [`MgbaError::Parse`] when the probe engine cannot be built.
pub fn auto_period(netlist: &Netlist) -> Result<f64, MgbaError> {
    let _span = obs::span("probe_period");
    const RELAXED: f64 = 10_000.0;
    let probe = Sta::new(
        netlist.clone(),
        Sdc::with_period(RELAXED),
        DerateSet::standard(),
    )?;
    let max_arrival = netlist
        .endpoints()
        .iter()
        .map(|&e| probe.endpoint_arrival(e))
        .filter(|a| a.is_finite())
        .fold(0.0, f64::max);
    Ok(RELAXED - probe.wns() - 0.10 * max_arrival)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_and_files_both_load() {
        let n = parse_design("small:3").unwrap();
        assert!(n.num_cells() > 0);
        assert!(matches!(parse_design("small:x"), Err(MgbaError::Usage(_))));
        assert!(matches!(parse_design("D99"), Err(MgbaError::Usage(_))));

        let dir = std::env::temp_dir().join("mgba_load_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.nl");
        std::fs::write(&path, netlist::write_netlist(&n)).unwrap();
        let re = load_design_or_file(path.to_str().unwrap()).unwrap();
        assert_eq!(re.num_cells(), n.num_cells());
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_netlist_file("/nonexistent/x.nl"),
            Err(MgbaError::Io { .. })
        ));
    }

    #[test]
    fn malformed_file_is_parse_error() {
        let dir = std::env::temp_dir().join("mgba_load_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.nl");
        std::fs::write(&path, "design x\nlibrary std45\nnonsense here\n").unwrap();
        assert!(matches!(
            load_netlist_file(path.to_str().unwrap()),
            Err(MgbaError::Parse(_))
        ));
    }

    #[test]
    fn auto_period_yields_violations() {
        let n = parse_design("small:9").unwrap();
        let period = auto_period(&n).unwrap();
        let sta = build_engine(n, period).unwrap();
        assert!(sta.wns() < 0.0, "auto period must leave violations");
    }
}
