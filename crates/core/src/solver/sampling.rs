//! Uniform row sampling with doubling — the paper's Algorithm 1
//! (`SCG + RS`).
//!
//! The optimal weight vector is extremely sparse (Fig. 3: ~96% of entries
//! near zero), so a small uniformly sampled subset of the path equations
//! already pins it down. Algorithm 1 starts from a tiny row ratio `r₀`,
//! solves the reduced problem with SCG (warm-started from the previous
//! round), and doubles the ratio until the solution stops moving
//! (relative change below `ε_u`).

use crate::config::MgbaConfig;
use crate::problem::FitProblem;
use crate::solver::{scg, ObjectiveProbe, SolveResult};
use rand::rngs::StdRng;
use sparsela::sampling::UniformSampler;
use sparsela::vecops;
use std::time::Instant;

/// One doubling round of Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingRound {
    /// Row-selection ratio of this round.
    pub ratio: f64,
    /// Rows in the reduced problem.
    pub rows: usize,
    /// Relative solution change vs. the previous round (`∞` on the first).
    pub change: f64,
    /// Full-problem objective estimate after this round.
    pub objective: f64,
    /// Inner SCG iterations.
    pub inner_iterations: usize,
}

/// Runs Algorithm 1 and also returns the per-round trace (used to
/// regenerate the paper's Fig. 4 convergence plot).
pub fn solve_traced(
    problem: &FitProblem,
    config: &MgbaConfig,
    rng: &mut StdRng,
) -> (SolveResult, Vec<SamplingRound>) {
    let x0 = vec![0.0; problem.num_gates()];
    solve_traced_from(problem, config, &x0, 0, rng)
}

/// Runs Algorithm 1 starting the doubling loop from `x0` instead of the
/// zero vector. The reduced-problem rounds already warm-start from the
/// previous round internally; this extends the same continuation to the
/// outer call, so an incremental recalibration resumes from the prior
/// fit's `x*`. `step_offset` continues the inner step-decay schedule
/// that many iterations in (pass the previous solve's iteration count
/// so a near-optimal `x0` is refined with small steps rather than
/// knocked away by full-size ones). The ratio schedule is unchanged —
/// the keep-better-iterate rule guarantees the result is never worse
/// (on the probe) than `x0`.
///
/// # Panics
///
/// Panics if `x0.len() != num_gates`.
pub fn solve_traced_from(
    problem: &FitProblem,
    config: &MgbaConfig,
    x0: &[f64],
    step_offset: usize,
    rng: &mut StdRng,
) -> (SolveResult, Vec<SamplingRound>) {
    let _span = obs::span("scg_rs");
    obs::telemetry::solve_begin("SCG + RS");
    let start = Instant::now();
    let m = problem.num_paths();
    assert_eq!(
        x0.len(),
        problem.num_gates(),
        "warm start: dimension mismatch"
    );
    let sampler = UniformSampler::new();
    let probe = ObjectiveProbe::new(problem, 512);
    let mut x = x0.to_vec();
    let mut prev_obj = probe.estimate(problem, &x);
    let mut ratio = config.initial_row_ratio.clamp(0.0, 1.0);
    let mut rounds = Vec::new();
    let mut iterations = 0usize;
    let mut rows_touched = 0u64;
    let mut fault: Option<String> = None;
    let converged;

    loop {
        // Lines 1/5: uniform row sample at the current ratio.
        let rows = sampler.sample_ratio(rng, m, ratio);
        let reduced = problem.subproblem(&rows);
        // Line 3: solve the reduced problem. Warm start from the previous
        // round's solution and continue the step-decay schedule across
        // rounds, so each round refines rather than re-randomizes.
        let inner = scg::solve_with_offset(&reduced, config, &x, step_offset + iterations, rng);
        iterations += inner.iterations;
        rows_touched += inner.rows_touched;
        // A guard trip in the inner solve poisons the whole round
        // schedule: abort the doubling and report the fault (the last
        // accepted x is kept, but the ladder will judge the result).
        if inner.fault.is_some() {
            fault = inner.fault;
            converged = false;
            break;
        }
        // Line 2: relative solution variation, plus a full-problem
        // objective plateau test. The stochastic inner solves leave noise
        // on x, so the x-criterion alone can keep doubling long after the
        // fit quality has saturated; the objective probe (uniform rows,
        // fixed) measures the quantity the doubling is supposed to
        // improve.
        let change = vecops::relative_change(&inner.x, &x);
        let obj = probe.estimate(problem, &inner.x);
        rounds.push(SamplingRound {
            ratio,
            rows: rows.len(),
            change,
            objective: obj,
            inner_iterations: inner.iterations,
        });
        obs::telemetry::record_round(
            ratio,
            rows.len() as u64,
            change,
            obj,
            inner.iterations as u64,
        );
        // Keep the better iterate when a round regresses on the full
        // problem (possible when its subsample was unrepresentative).
        if obj <= prev_obj {
            x = inner.x;
            prev_obj = obj;
        }
        // A round that did not move x at all (change exactly 0) while
        // sampling only a fraction of the rows is inconclusive, not
        // converged: with stochastic steps a zero change means every
        // sampled gradient vanished — e.g. the subsample drew only
        // zero-residual rows — which says nothing about the rows not
        // drawn. Keep doubling; the ratio-1.0 round still terminates.
        if change < config.outer_tolerance && (change > 0.0 || ratio >= 1.0) {
            converged = true;
            break;
        }
        if ratio >= 1.0 {
            // All rows already in play; accept the full-problem solve.
            converged = inner.converged;
            break;
        }
        // Line 4: double the ratio.
        ratio = (ratio * 2.0).min(1.0);
    }

    let objective = problem.objective(&x);
    obs::telemetry::solve_end(converged, iterations as u64, rows_touched, Some(objective));
    (
        SolveResult {
            objective,
            x,
            iterations,
            elapsed: start.elapsed(),
            converged,
            rows_touched,
            fault,
        },
        rounds,
    )
}

/// Runs Algorithm 1 (discarding the trace).
pub fn solve(problem: &FitProblem, config: &MgbaConfig, rng: &mut StdRng) -> SolveResult {
    solve_traced(problem, config, rng).0
}

/// Runs Algorithm 1 from `x0` (discarding the trace).
pub fn solve_from(
    problem: &FitProblem,
    config: &MgbaConfig,
    x0: &[f64],
    step_offset: usize,
    rng: &mut StdRng,
) -> SolveResult {
    solve_traced_from(problem, config, x0, step_offset, rng).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::testutil::planted;
    use rand::SeedableRng;

    #[test]
    fn rs_reduces_objective_substantially() {
        let (p, _) = planted(2000, 60, 8, 0.9, 31);
        let f0 = p.objective(&vec![0.0; p.num_gates()]);
        let mut rng = StdRng::seed_from_u64(7);
        let r = solve(&p, &MgbaConfig::default(), &mut rng);
        assert!(r.objective < 0.2 * f0, "{} !< 0.2·{}", r.objective, f0);
    }

    #[test]
    fn rs_touches_fewer_rows_than_plain_scg() {
        let (p, _) = planted(4000, 60, 8, 0.92, 32);
        let x0 = vec![0.0; p.num_gates()];
        let cfg = MgbaConfig::default();
        let mut rng = StdRng::seed_from_u64(8);
        let full = scg::solve(&p, &cfg, &x0, &mut rng);
        let mut rng = StdRng::seed_from_u64(8);
        let rs = solve(&p, &cfg, &mut rng);
        assert!(
            rs.rows_touched < full.rows_touched,
            "RS {} must touch fewer rows than full SCG {}",
            rs.rows_touched,
            full.rows_touched
        );
    }

    #[test]
    fn ratio_doubles_between_rounds() {
        let (p, _) = planted(1000, 50, 6, 0.9, 33);
        // Force several rounds by making the outer tolerance strict.
        let cfg = MgbaConfig {
            outer_tolerance: 1e-9,
            max_iterations: 200,
            ..MgbaConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let (_, rounds) = solve_traced(&p, &cfg, &mut rng);
        assert!(rounds.len() >= 2);
        for w in rounds.windows(2) {
            assert!((w[1].ratio - (w[0].ratio * 2.0).min(1.0)).abs() < 1e-12);
        }
        // Terminates at full ratio despite the impossible tolerance.
        assert_eq!(rounds.last().unwrap().ratio, 1.0);
    }

    #[test]
    fn first_effective_round_change_is_infinite_from_zero_start() {
        let (p, _) = planted(500, 40, 5, 0.9, 34);
        let mut rng = StdRng::seed_from_u64(10);
        let (_, rounds) = solve_traced(&p, &MgbaConfig::default(), &mut rng);
        // Early rounds whose subsample carries no gradient information
        // leave x untouched (change exactly 0). The first round that
        // does move x moves it away from the zero vector, so its
        // relative change is unbounded.
        let first_move = rounds
            .iter()
            .find(|r| r.change > 0.0)
            .expect("at least one round must move x");
        assert!(
            first_move.change.is_infinite() || first_move.change > 1.0,
            "change {}",
            first_move.change
        );
    }

    #[test]
    fn uninformative_round_does_not_end_the_doubling() {
        let (p, _) = planted(500, 40, 5, 0.9, 34);
        let mut rng = StdRng::seed_from_u64(10);
        let (r, rounds) = solve_traced(&p, &MgbaConfig::default(), &mut rng);
        // Whatever the subsamples looked like, the solve must not stop
        // at the all-zero iterate claiming success: the planted problem
        // has a strictly better solution than x = 0.
        let f0 = p.objective(&vec![0.0; p.num_gates()]);
        assert!(r.objective < f0, "{} !< {}", r.objective, f0);
        // And a stalled (change == 0) partial-ratio round is always
        // followed by another round at a doubled ratio.
        for w in rounds.windows(2) {
            if w[0].change == 0.0 {
                assert!((w[1].ratio - (w[0].ratio * 2.0).min(1.0)).abs() < 1e-12);
            }
        }
        if let Some(last) = rounds.last() {
            assert!(last.change > 0.0 || last.ratio >= 1.0);
        }
    }

    #[test]
    fn rs_deterministic_given_seed() {
        let (p, _) = planted(800, 40, 6, 0.9, 35);
        let a = solve(&p, &MgbaConfig::default(), &mut StdRng::seed_from_u64(11));
        let b = solve(&p, &MgbaConfig::default(), &mut StdRng::seed_from_u64(11));
        assert_eq!(a.x, b.x);
    }
}
