//! L1-regularized fitting — a sparsity-promoting extension.
//!
//! The paper observes (Fig. 3) that the optimal weight vector is ~96 %
//! zero and *exploits* that observation for row sampling; this module
//! goes one step further and *enforces* it: solve
//!
//! ```text
//! min ‖A·x − b‖² + penalty·‖max(0, lower − A·x)‖² + mu·‖x‖₁
//! ```
//!
//! with FISTA (accelerated proximal gradient + soft-thresholding). An
//! explicitly sparse solution touches fewer gates when folded back into
//! the timing graph — fewer derate overrides to carry through an
//! industrial flow — at a small accuracy cost that the `mu` knob trades
//! off. This is an extension beyond the paper, benchmarked against its
//! solvers in `benches/solvers.rs`.

use crate::config::MgbaConfig;
use crate::problem::FitProblem;
use crate::solver::SolveResult;
use sparsela::vecops;
use std::time::Instant;

/// Soft-thresholding operator: `sign(v)·max(|v| − t, 0)`.
#[inline]
fn soft_threshold(v: f64, t: f64) -> f64 {
    if v > t {
        v - t
    } else if v < -t {
        v + t
    } else {
        0.0
    }
}

/// Estimates the gradient Lipschitz constant via power iteration on
/// `2·(1+penalty)·AᵀA` (upper bound including the penalty curvature).
fn lipschitz(problem: &FitProblem, penalty: f64, iters: usize) -> f64 {
    let n = problem.num_gates();
    let a = problem.matrix();
    let at = problem.matrix_t();
    let par = problem.parallelism();
    let mut v = vec![1.0 / (n as f64).sqrt(); n];
    let mut lambda = 1.0;
    for _ in 0..iters {
        let av = a.matvec_par(&v, par);
        let mut atav = at.matvec_par(&av, par);
        lambda = vecops::norm2(&atav).max(1e-30);
        vecops::scale(1.0 / lambda, &mut atav);
        v = atav;
    }
    2.0 * (1.0 + penalty) * lambda
}

/// Runs FISTA on the L1-regularized problem. `mu` is the L1 weight; with
/// `mu = 0` this is plain accelerated gradient on the Eq. (6) objective.
pub fn solve(problem: &FitProblem, config: &MgbaConfig, mu: f64) -> SolveResult {
    let _span = obs::span("fista");
    obs::telemetry::solve_begin("FISTA");
    let start = Instant::now();
    let m = problem.num_paths();
    let n = problem.num_gates();
    let mut x = vec![0.0; n];
    if m == 0 || n == 0 {
        let objective = problem.objective(&x);
        obs::telemetry::solve_end(true, 0, 0, Some(objective));
        return SolveResult {
            objective,
            x,
            iterations: 0,
            elapsed: start.elapsed(),
            converged: true,
            rows_touched: 0,
            fault: None,
        };
    }

    let lip = lipschitz(problem, config.penalty, 12).max(1e-12);
    let step = 1.0 / lip;
    let mut y = x.clone();
    let mut t: f64 = 1.0;
    let mut iterations = 0usize;
    let mut rows_touched = 12 * 2 * m as u64; // power iteration cost
    let mut converged = false;
    let mut prev_obj = f64::INFINITY;
    // Buffers reused across iterations — the full gradient and the
    // proximal iterate are the allocation hot spots of the FISTA loop.
    let mut g: Vec<f64> = Vec::new();
    let mut coeffs: Vec<f64> = Vec::new();
    let mut x_new = vec![0.0; n];

    while iterations < config.max_iterations {
        // Gradient of the smooth part at y (row-parallel two-pass).
        problem.gradient_into(&y, &mut coeffs, &mut g);
        rows_touched += m as u64;
        // Proximal step with soft-thresholding.
        for j in 0..n {
            x_new[j] = soft_threshold(y[j] - step * g[j], step * mu);
        }
        // FISTA momentum.
        let t_new = (1.0 + (1.0 + 4.0 * t * t).sqrt()) / 2.0;
        for j in 0..n {
            y[j] = x_new[j] + ((t - 1.0) / t_new) * (x_new[j] - x[j]);
        }
        std::mem::swap(&mut x, &mut x_new);
        t = t_new;
        iterations += 1;

        let mut window_obj = None;
        if iterations.is_multiple_of(config.check_window) {
            let obj = problem.objective(&x) + mu * x.iter().map(|v| v.abs()).sum::<f64>();
            rows_touched += m as u64;
            window_obj = Some(obj);
            if prev_obj.is_finite()
                && (prev_obj - obj).abs() <= config.inner_tolerance * prev_obj.abs().max(1e-30)
            {
                converged = true;
            }
            prev_obj = obj;
        }
        // FISTA never needs the gradient norm itself — compute it only
        // when telemetry is live.
        let gnorm = if obs::enabled() {
            vecops::norm2(&g)
        } else {
            0.0
        };
        obs::telemetry::record_iteration(
            (iterations - 1) as u64,
            window_obj,
            gnorm,
            step,
            m as u64,
        );
        if converged {
            break;
        }
    }

    let objective = problem.objective(&x);
    obs::telemetry::solve_end(converged, iterations as u64, rows_touched, Some(objective));
    SolveResult {
        objective,
        x,
        iterations,
        elapsed: start.elapsed(),
        converged,
        rows_touched,
        fault: None,
    }
}

/// Fraction of exactly-zero entries in a solution (the sparsity the L1
/// term buys).
pub fn sparsity(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().filter(|v| **v == 0.0).count() as f64 / x.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::cgnr;
    use crate::solver::testutil::planted;

    #[test]
    fn soft_threshold_basics() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn mu_zero_matches_least_squares_quality() {
        let (p, _) = planted(400, 50, 6, 0.9, 801);
        let cfg = MgbaConfig::default();
        let fista = solve(&p, &cfg, 0.0);
        let reference = cgnr::solve(&p, &cfg);
        // Same optimum (the planted problem is consistent): both reach
        // tiny objectives.
        assert!(
            fista.objective <= reference.objective * 10.0 + 1e-6,
            "fista {} vs cgnr {}",
            fista.objective,
            reference.objective
        );
    }

    #[test]
    fn l1_term_increases_exact_sparsity() {
        let (p, _) = planted(600, 80, 6, 0.85, 802);
        let cfg = MgbaConfig::default();
        let dense = solve(&p, &cfg, 0.0);
        // Scale mu to the problem: a fraction of the gradient magnitude.
        let g0 = p.gradient(&vec![0.0; p.num_gates()]);
        let mu = 0.01 * g0.iter().map(|v| v.abs()).fold(0.0, f64::max);
        let sparse = solve(&p, &cfg, mu);
        assert!(
            sparsity(&sparse.x) > sparsity(&dense.x),
            "L1 {} must beat {}",
            sparsity(&sparse.x),
            sparsity(&dense.x)
        );
        assert!(sparsity(&sparse.x) > 0.3, "got {}", sparsity(&sparse.x));
        // ...at bounded accuracy cost.
        assert!(sparse.objective < p.objective(&vec![0.0; p.num_gates()]) * 0.5);
    }

    #[test]
    fn sparsity_helper() {
        assert_eq!(sparsity(&[0.0, 1.0, 0.0, 0.0]), 0.75);
        assert_eq!(sparsity(&[]), 0.0);
    }

    #[test]
    fn empty_problem_is_trivial() {
        let (p, _) = planted(10, 5, 2, 0.9, 803);
        let sub = p.subproblem(&[]);
        let r = solve(&sub, &MgbaConfig::default(), 1.0);
        assert!(r.converged);
        assert_eq!(r.x, vec![0.0; 5]);
    }
}
