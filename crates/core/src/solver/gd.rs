//! Full gradient descent — the paper's `GD + w/o RS` baseline.
//!
//! Every iteration computes the exact gradient of the penalized objective
//! over **all** rows, normalizes it, and takes a decaying step. This is
//! the conventional method the paper's Table 4 measures the proposed
//! solvers against: accurate per-step progress, but each step costs a
//! full sweep of the (potentially millions-row) matrix.

use crate::config::MgbaConfig;
use crate::problem::FitProblem;
use crate::solver::guard::SolveGuard;
use crate::solver::{ObjectiveProbe, SolveResult};
use sparsela::vecops;
use std::time::Instant;

/// Runs gradient descent from `x0`.
pub fn solve(problem: &FitProblem, config: &MgbaConfig, x0: &[f64]) -> SolveResult {
    solve_with_offset(problem, config, x0, 0)
}

/// Runs gradient descent from `x0`, resuming the hyperbolic step-decay
/// schedule `step_offset` iterations in — a warm start near the optimum
/// wants the small steps the previous solve had decayed to, not a fresh
/// full-size step that knocks the iterate away.
pub fn solve_with_offset(
    problem: &FitProblem,
    config: &MgbaConfig,
    x0: &[f64],
    step_offset: usize,
) -> SolveResult {
    let _span = obs::span("gd");
    obs::telemetry::solve_begin("GD + w/o RS");
    let start = Instant::now();
    let mut x = x0.to_vec();
    let m = problem.num_paths();
    let probe = ObjectiveProbe::new(problem, 512);
    let mut best_obj = probe.estimate(problem, &x);
    let floor = 1e-12
        * problem
            .pba_slacks()
            .iter()
            .map(|s| s * s)
            .sum::<f64>()
            .max(1e-30);
    let mut converged = best_obj <= floor;
    let mut guard = SolveGuard::new(config, best_obj);
    let mut fault: Option<String> = None;
    let mut stalled = 0usize;
    let mut iterations = 0;
    let mut rows_touched = 0u64;
    // Reused across iterations: the full gradient is the hot path, and
    // re-allocating its row/column buffers every step dominated small
    // solves.
    let mut g: Vec<f64> = Vec::new();
    let mut coeffs: Vec<f64> = Vec::new();

    while !converged && iterations < config.max_iterations {
        // Free when no deadline is configured (a single Option match).
        if let Err(e) = guard.check_deadline() {
            fault = Some(e);
            break;
        }
        match faultinject::fire("solver.iter") {
            Some(faultinject::Fault::Nan) => {
                if let Some(x0) = x.first_mut() {
                    *x0 = f64::NAN;
                }
            }
            Some(faultinject::Fault::Error) => {
                fault = Some("failpoint `solver.iter`: injected error".into());
                break;
            }
            None => {}
        }
        problem.gradient_into(&x, &mut coeffs, &mut g);
        rows_touched += m as u64;
        let gnorm = vecops::normalize(&mut g);
        if let Err(e) = guard.check_value("gradient norm", gnorm) {
            fault = Some(e);
            break;
        }
        if gnorm == 0.0 {
            obs::telemetry::record_iteration(iterations as u64, None, 0.0, 0.0, m as u64);
            converged = true;
            break;
        }
        let step = config.step_size / (1.0 + config.step_decay * (step_offset + iterations) as f64);
        vecops::axpy(-step, &g, &mut x);
        iterations += 1;

        let mut window_obj = None;
        if iterations.is_multiple_of(config.check_window) {
            let obj = probe.estimate(problem, &x);
            window_obj = Some(obj);
            if let Err(e) = guard.check_window(obj, vecops::norm2_sq(&x)) {
                fault = Some(e);
            } else if obj <= floor {
                converged = true;
            } else if obj < best_obj * (1.0 - config.inner_tolerance) {
                // Stall-based plateau: stop once the best objective seen
                // stops improving by the tolerance for two consecutive
                // windows (robust to the oscillation of normalized-step
                // descent).
                best_obj = obj;
                stalled = 0;
            } else {
                stalled += 1;
                if stalled >= 2 {
                    converged = true;
                }
            }
        }
        obs::telemetry::record_iteration(
            (iterations - 1) as u64,
            window_obj,
            gnorm,
            step,
            m as u64,
        );
        if fault.is_some() {
            break;
        }
    }

    let objective = problem.objective(&x);
    obs::telemetry::solve_end(converged, iterations as u64, rows_touched, Some(objective));
    SolveResult {
        objective,
        x,
        iterations,
        elapsed: start.elapsed(),
        converged,
        rows_touched,
        fault,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::testutil::planted;

    #[test]
    fn gd_reduces_objective_substantially() {
        let (p, _) = planted(400, 60, 8, 0.9, 11);
        let x0 = vec![0.0; p.num_gates()];
        let f0 = p.objective(&x0);
        let r = solve(&p, &MgbaConfig::default(), &x0);
        assert!(r.objective < 0.1 * f0, "{} !< 0.1·{}", r.objective, f0);
        assert!(r.iterations > 0);
        assert!(r.rows_touched >= 400);
    }

    #[test]
    fn gd_improves_mse_toward_golden() {
        let (p, _) = planted(500, 50, 6, 0.85, 12);
        let x0 = vec![0.0; p.num_gates()];
        let before = p.mse(&x0);
        let r = solve(&p, &MgbaConfig::default(), &x0);
        let after = p.mse(&r.x);
        assert!(
            after < 0.2 * before,
            "mse must drop substantially: {before} → {after}"
        );
    }

    #[test]
    fn gd_at_optimum_stops_immediately() {
        let (p, x_true) = planted(300, 40, 6, 0.9, 13);
        // Start at the planted optimum: the probe window sees no
        // improvement and the gradient is ~0, so GD exits quickly.
        let r = solve(&p, &MgbaConfig::default(), &x_true);
        assert!(r.iterations <= MgbaConfig::default().check_window);
        assert!(p.objective(&r.x) <= p.objective(&x_true) + 1e-6);
    }

    #[test]
    fn gd_respects_iteration_cap() {
        let (p, _) = planted(200, 30, 5, 0.9, 14);
        let cfg = MgbaConfig {
            max_iterations: 3,
            ..MgbaConfig::default()
        };
        let r = solve(&p, &cfg, &vec![0.0; p.num_gates()]);
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }
}
