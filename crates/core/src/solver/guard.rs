//! Per-iteration solver guardrails.
//!
//! Every iterative solver threads a [`SolveGuard`] through its
//! convergence-check windows. The guard watches for the three ways a
//! stochastic descent can go wrong without ever "failing":
//!
//! 1. **non-finite state** — a NaN/inf objective, gradient norm, or
//!    iterate norm (e.g. from a corrupted derate upstream) would
//!    otherwise satisfy no comparison and let the stall logic declare
//!    convergence on garbage;
//! 2. **divergence** — the windowed objective climbing past
//!    `divergence_factor ×` its starting value, or growing for
//!    `divergence_streak` consecutive windows (‖x‖ blow-up surfaces
//!    here too: an exploding iterate explodes the objective, and its
//!    norm is checked for finiteness directly);
//! 3. **wall-clock overrun** — `solver_timeout_ms` exceeded (disabled
//!    by default so unconfigured runs stay deterministic).
//!
//! A trip aborts the stage with `SolveResult::fault = Some(reason)`;
//! [`super::solve_with_fallback`] then demotes to the next ladder stage.
//! All checks are read-only when nothing trips, so guarded and unguarded
//! solves produce bit-identical iterates.

use crate::config::MgbaConfig;
use std::time::Instant;

/// Watchdog for one solver stage. See the module docs.
pub(crate) struct SolveGuard {
    baseline: f64,
    prev_obj: f64,
    growth_streak: usize,
    streak_limit: usize,
    factor: f64,
    deadline: Option<Instant>,
    timeout_ms: u64,
}

impl SolveGuard {
    /// Starts the watchdog from the stage's initial objective estimate.
    pub(crate) fn new(config: &MgbaConfig, baseline: f64) -> Self {
        Self {
            baseline,
            prev_obj: baseline,
            growth_streak: 0,
            streak_limit: config.divergence_streak.max(1),
            factor: config.divergence_factor,
            deadline: (config.solver_timeout_ms > 0).then(|| {
                Instant::now() + std::time::Duration::from_millis(config.solver_timeout_ms)
            }),
            timeout_ms: config.solver_timeout_ms,
        }
    }

    /// Checks a per-iteration scalar (gradient norm, CG residual) for
    /// finiteness.
    pub(crate) fn check_value(&self, what: &str, v: f64) -> Result<(), String> {
        if v.is_finite() {
            Ok(())
        } else {
            Err(format!("{what} became non-finite ({v})"))
        }
    }

    /// Checks the wall-clock deadline (no-op when `solver_timeout_ms`
    /// is 0).
    pub(crate) fn check_deadline(&self) -> Result<(), String> {
        match self.deadline {
            Some(d) if Instant::now() > d => Err(format!(
                "wall-clock budget of {} ms exceeded",
                self.timeout_ms
            )),
            _ => Ok(()),
        }
    }

    /// Full windowed check: finiteness of the objective estimate and
    /// iterate norm, divergence (factor and streak), and the deadline.
    pub(crate) fn check_window(&mut self, obj: f64, x_norm_sq: f64) -> Result<(), String> {
        if !obj.is_finite() {
            return Err(format!("objective estimate became non-finite ({obj})"));
        }
        if !x_norm_sq.is_finite() {
            return Err(format!("iterate norm became non-finite ({x_norm_sq})"));
        }
        if self.baseline.is_finite() && obj > self.baseline * self.factor {
            return Err(format!(
                "diverging: objective {obj:.3e} exceeded {}× its starting value {:.3e}",
                self.factor, self.baseline
            ));
        }
        if obj > self.prev_obj {
            self.growth_streak += 1;
            if self.growth_streak >= self.streak_limit {
                return Err(format!(
                    "diverging: objective grew for {} consecutive windows",
                    self.growth_streak
                ));
            }
        } else {
            self.growth_streak = 0;
        }
        self.prev_obj = obj;
        self.check_deadline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MgbaConfig {
        MgbaConfig::default()
    }

    #[test]
    fn healthy_descent_never_trips() {
        let mut g = SolveGuard::new(&cfg(), 100.0);
        for i in 0..50 {
            let obj = 100.0 / (i + 1) as f64;
            assert!(g.check_window(obj, obj).is_ok());
        }
        assert!(g.check_value("gnorm", 1.0).is_ok());
    }

    #[test]
    fn non_finite_objective_trips() {
        let mut g = SolveGuard::new(&cfg(), 100.0);
        let err = g.check_window(f64::NAN, 1.0).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
        let mut g = SolveGuard::new(&cfg(), 100.0);
        assert!(g.check_window(1.0, f64::INFINITY).is_err());
        assert!(g.check_value("gnorm", f64::NAN).is_err());
    }

    #[test]
    fn nan_baseline_still_trips_on_nan_windows() {
        // A NaN starting objective (corrupt inputs) must not disable the
        // guard: the windowed estimates are NaN too and trip finiteness.
        let mut g = SolveGuard::new(&cfg(), f64::NAN);
        assert!(g.check_window(f64::NAN, f64::NAN).is_err());
    }

    #[test]
    fn factor_blowup_trips() {
        let mut g = SolveGuard::new(&cfg(), 1.0);
        assert!(g.check_window(2.0, 1.0).is_ok());
        let err = g.check_window(2e3, 1.0).unwrap_err();
        assert!(err.contains("diverging"), "{err}");
    }

    #[test]
    fn growth_streak_trips_and_resets() {
        let c = MgbaConfig {
            divergence_streak: 3,
            ..cfg()
        };
        let mut g = SolveGuard::new(&c, 1.0);
        assert!(g.check_window(1.1, 1.0).is_ok());
        assert!(g.check_window(1.2, 1.0).is_ok());
        // An improving window resets the streak.
        assert!(g.check_window(0.9, 1.0).is_ok());
        assert!(g.check_window(1.0, 1.0).is_ok());
        assert!(g.check_window(1.1, 1.0).is_ok());
        let err = g.check_window(1.2, 1.0).unwrap_err();
        assert!(err.contains("consecutive windows"), "{err}");
    }

    #[test]
    fn deadline_disabled_by_default_and_trips_when_set() {
        let g = SolveGuard::new(&cfg(), 1.0);
        assert!(g.check_deadline().is_ok());
        let c = MgbaConfig {
            solver_timeout_ms: 1,
            ..cfg()
        };
        let g = SolveGuard::new(&c, 1.0);
        std::thread::sleep(std::time::Duration::from_millis(10));
        let err = g.check_deadline().unwrap_err();
        assert!(err.contains("wall-clock"), "{err}");
    }
}
