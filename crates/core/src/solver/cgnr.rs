//! Deterministic reference solver: conjugate gradient on the normal
//! equations (CGNR) with an active-set outer loop for the one-sided
//! penalty.
//!
//! Not part of the paper's comparison — it exists as the accuracy oracle:
//! Fig. 3's "optimal solution x*" histogram and Fig. 4's reference
//! solution are computed with this solver, and the test suite uses it to
//! check that the stochastic solvers land near the true optimum.
//!
//! With the violation set `V` frozen, the Eq. (6) objective is an
//! ordinary regularized least squares
//!
//! ```text
//! (AᵀA + w·A_VᵀA_V)·x = Aᵀb + w·A_Vᵀ·l_V
//! ```
//!
//! solved matrix-free by CG. The outer loop re-derives `V` from the new
//! iterate and repeats until the set stabilizes (it almost always does in
//! one or two rounds: at the least-squares optimum the model tracks PBA,
//! and the ε-tolerance keeps most rows feasible).

use crate::config::MgbaConfig;
use crate::problem::FitProblem;
use crate::solver::guard::SolveGuard;
use crate::solver::SolveResult;
use sparsela::vecops;
use std::time::Instant;

/// Maximum active-set refresh rounds.
const MAX_ACTIVE_SET_ROUNDS: usize = 8;
/// CG tolerance on the normal-equation residual (relative).
const CG_TOL: f64 = 1e-10;

/// Solves the penalized least squares to high accuracy from a zero start.
pub fn solve(problem: &FitProblem, config: &MgbaConfig) -> SolveResult {
    solve_from(problem, config, &vec![0.0; problem.num_gates()])
}

/// Solves the penalized least squares to high accuracy, starting CG from
/// `x0`. The objective is convex, so any finite start converges to the
/// same optimum; a good warm start only shortens the residual descent.
///
/// # Panics
///
/// Panics if `x0.len() != num_gates`.
pub fn solve_from(problem: &FitProblem, config: &MgbaConfig, x0: &[f64]) -> SolveResult {
    let _span = obs::span("cgnr");
    obs::telemetry::solve_begin("CGNR");
    let start = Instant::now();
    let m = problem.num_paths();
    let n = problem.num_gates();
    assert_eq!(x0.len(), n, "warm start: dimension mismatch");
    let mut x = x0.to_vec();
    if m == 0 || n == 0 {
        let objective = problem.objective(&x);
        obs::telemetry::solve_end(true, 0, 0, Some(objective));
        return SolveResult {
            objective,
            x,
            iterations: 0,
            elapsed: start.elapsed(),
            converged: true,
            rows_touched: 0,
            fault: None,
        };
    }
    let a = problem.matrix();
    // The operator and RHS are transpose products `Aᵀ·(row coeffs)`;
    // with the cached transpose each output entry is one fixed-order
    // column dot, so the parallel products are bit-identical for every
    // thread count.
    let at = problem.matrix_t();
    let par = problem.parallelism();
    let w = config.penalty;
    let b: Vec<f64> = problem
        .gba_slacks()
        .iter()
        .zip(problem.pba_slacks())
        .map(|(g, p)| g - p)
        .collect();
    let lower: Vec<f64> = b
        .iter()
        .zip(problem.pba_slacks())
        .map(|(bi, pi)| bi - config.epsilon * pi.abs())
        .collect();

    // Row-space scratch shared by the operator and the RHS assembly.
    let mut ym = vec![0.0; m];
    let apply = |active: &[bool], v: &[f64], ym: &mut [f64], out: &mut [f64]| {
        parallel::par_fill(par, ym, |i| {
            let ri = a.row_dot(i, v);
            if active[i] {
                ri * (1.0 + w)
            } else {
                ri
            }
        });
        parallel::par_fill(par, out, |j| at.row_dot(j, ym));
    };

    let mut iterations = 0usize;
    let mut rows_touched = 0u64;
    let mut active = vec![false; m];
    let mut converged = false;
    // check_window is never called here (CG needs no probe); the guard
    // provides the deadline and finiteness checks.
    let guard = SolveGuard::new(config, 0.0);
    let mut fault: Option<String> = None;

    'rounds: for _round in 0..MAX_ACTIVE_SET_ROUNDS {
        // RHS: Aᵀb + w·A_Vᵀ·l_V.
        parallel::par_fill(par, &mut ym, |i| {
            if active[i] {
                b[i] + w * lower[i]
            } else {
                b[i]
            }
        });
        let mut rhs = vec![0.0; n];
        parallel::par_fill(par, &mut rhs, |j| at.row_dot(j, &ym));
        // CG on (AᵀA + w A_VᵀA_V) x = rhs from the current x.
        let mut ax = vec![0.0; n];
        apply(&active, &x, &mut ym, &mut ax);
        let mut r: Vec<f64> = rhs.iter().zip(&ax).map(|(q, p)| q - p).collect();
        let mut p = r.clone();
        let rhs_norm = vecops::norm2(&rhs).max(1e-30);
        let mut rs_old = vecops::norm2_sq(&r);
        let max_cg = 4 * n + 100;
        let mut scratch = vec![0.0; n];
        for _ in 0..max_cg {
            match faultinject::fire("solver.iter") {
                Some(faultinject::Fault::Nan) => {
                    if let Some(x0) = x.first_mut() {
                        *x0 = f64::NAN;
                    }
                }
                Some(faultinject::Fault::Error) => {
                    fault = Some("failpoint `solver.iter`: injected error".into());
                    break 'rounds;
                }
                None => {}
            }
            if rs_old.sqrt() / rhs_norm < CG_TOL {
                break;
            }
            apply(&active, &p, &mut ym, &mut scratch);
            rows_touched += 2 * m as u64;
            let denom = vecops::dot(&p, &scratch);
            if denom <= 0.0 {
                break;
            }
            let alpha = rs_old / denom;
            vecops::axpy(alpha, &p, &mut x);
            vecops::axpy(-alpha, &scratch, &mut r);
            let rs_new = vecops::norm2_sq(&r);
            if let Err(e) = guard.check_value("CG residual", rs_new) {
                fault = Some(e);
                break 'rounds;
            }
            if let Err(e) = guard.check_deadline() {
                fault = Some(e);
                break 'rounds;
            }
            let beta = rs_new / rs_old;
            for j in 0..n {
                p[j] = r[j] + beta * p[j];
            }
            obs::telemetry::record_iteration(
                iterations as u64,
                None,
                rs_old.sqrt(),
                alpha,
                2 * m as u64,
            );
            rs_old = rs_new;
            iterations += 1;
        }
        // A poisoned iterate keeps the CG residuals finite (they track r,
        // not x), so check x itself once per round.
        if x.iter().any(|v| !v.is_finite()) {
            fault = Some("iterate became non-finite".into());
            break;
        }
        // Refresh the active set (row-parallel, exact booleans).
        let mut new_active = vec![false; m];
        parallel::par_fill(par, &mut new_active, |i| a.row_dot(i, &x) < lower[i]);
        let changed = new_active.iter().zip(&active).any(|(new, old)| new != old);
        rows_touched += m as u64;
        active = new_active;
        if !changed {
            converged = true;
            break;
        }
    }

    let objective = problem.objective(&x);
    obs::telemetry::solve_end(converged, iterations as u64, rows_touched, Some(objective));
    SolveResult {
        objective,
        x,
        iterations,
        elapsed: start.elapsed(),
        converged,
        rows_touched,
        fault,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::testutil::planted;

    #[test]
    fn cgnr_recovers_planted_solution() {
        let (p, x_true) = planted(800, 50, 8, 0.9, 41);
        let r = solve(&p, &MgbaConfig::default());
        assert!(r.converged);
        // The planted problem is consistent: residual ≈ 0, mse ≈ 0.
        assert!(p.mse(&r.x) < 1e-12, "mse {}", p.mse(&r.x));
        // On a consistent overdetermined system the solution is unique
        // wherever columns are fully covered.
        let model = p.model_slacks(&r.x);
        for (m, g) in model.iter().zip(p.pba_slacks()) {
            assert!((m - g).abs() < 1e-5);
        }
        let _ = x_true;
    }

    #[test]
    fn cgnr_beats_or_matches_stochastic_solvers() {
        use crate::solver::{gd, scg};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (p, _) = planted(600, 60, 8, 0.88, 42);
        let cfg = MgbaConfig::default();
        let x0 = vec![0.0; p.num_gates()];
        let r_ref = solve(&p, &cfg);
        let r_gd = gd::solve(&p, &cfg, &x0);
        let r_scg = scg::solve(&p, &cfg, &x0, &mut StdRng::seed_from_u64(1));
        assert!(r_ref.objective <= r_gd.objective + 1e-9);
        assert!(r_ref.objective <= r_scg.objective + 1e-9);
    }

    #[test]
    fn cgnr_solution_is_sparse_like_planted() {
        // Fig. 3's claim: the optimum inherits the planted sparsity.
        let (p, x_true) = planted(1500, 100, 8, 0.95, 43);
        let r = solve(&p, &MgbaConfig::default());
        let near_zero_true = x_true.iter().filter(|v| v.abs() < 0.01).count();
        let near_zero_got = r.x.iter().filter(|v| v.abs() < 0.01).count();
        // Within 15% of the planted sparsity level.
        let diff = (near_zero_true as f64 - near_zero_got as f64).abs();
        assert!(
            diff / x_true.len() as f64 <= 0.15,
            "sparsity mismatch: planted {near_zero_true}, got {near_zero_got}"
        );
    }

    #[test]
    fn cgnr_empty_problem() {
        let (p, _) = planted(10, 5, 2, 0.9, 44);
        let sub = p.subproblem(&[]);
        let r = solve(&sub, &MgbaConfig::default());
        assert!(r.converged);
        assert_eq!(r.x, vec![0.0; 5]);
    }
}
