//! Optimization solvers for the mGBA fitting problem.
//!
//! Three solvers matching the paper's Table 4 comparison, plus a
//! deterministic reference:
//!
//! | module       | paper name   | description |
//! |--------------|--------------|-------------|
//! | [`gd`]       | GD + w/o RS  | full-gradient descent over all rows |
//! | [`scg`]      | SCG + w/o RS | Algorithm 2: stochastic conjugate gradient with randomized-Kaczmarz row draws |
//! | [`sampling`] | SCG + RS     | Algorithm 1: uniform row sampling with doubling, SCG inner solver |
//! | [`cgnr`]     | —            | conjugate gradient on the normal equations with an active-set penalty loop; the accuracy oracle used for Fig. 3/Fig. 4 |
//! | [`ista`]     | —            | L1-regularized FISTA (extension): enforces the sparsity Fig. 3 observes |
//!
//! All stochastic solvers share the convergence rule: every
//! `check_window` iterations the penalized objective is estimated on a
//! fixed row subsample, and the solve stops when the relative improvement
//! over the window falls below `inner_tolerance` (the practical analogue
//! of the paper's relative-variation test, robust to stochastic noise).

pub mod cgnr;
pub mod gd;
pub(crate) mod guard;
pub mod ista;
pub mod sampling;
pub mod scg;

use crate::config::MgbaConfig;
use crate::problem::FitProblem;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Which solver to run (the paper's Table 4 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Solver {
    /// Gradient descent without row selection (`GD + w/o RS`).
    Gd,
    /// Stochastic conjugate gradient without row selection
    /// (`SCG + w/o RS`).
    Scg,
    /// Uniform row sampling with SCG inner solves (`SCG + RS`).
    ScgRs,
    /// Deterministic conjugate-gradient reference (not in the paper's
    /// comparison; used as the accuracy oracle).
    Cgnr,
}

impl Solver {
    /// Paper-style display name.
    pub fn paper_name(self) -> &'static str {
        match self {
            Solver::Gd => "GD + w/o RS",
            Solver::Scg => "SCG + w/o RS",
            Solver::ScgRs => "SCG + RS",
            Solver::Cgnr => "CGNR (reference)",
        }
    }

    /// Runs this solver on `problem` from a zero start.
    pub fn solve(self, problem: &FitProblem, config: &MgbaConfig) -> SolveResult {
        self.solve_from(problem, config, None)
    }

    /// Runs this solver on `problem`, starting from `warm_start` when
    /// given (a previous fit's `x*` plus the decay offset to resume at)
    /// and from zero otherwise. With `warm_start: None` this is
    /// bit-identical to [`Solver::solve`].
    ///
    /// # Panics
    ///
    /// Panics if the warm vector's length differs from
    /// `problem.num_gates()` — callers decide the miss policy (the
    /// server falls back to a cold start) before reaching the solver.
    pub fn solve_from(
        self,
        problem: &FitProblem,
        config: &MgbaConfig,
        warm_start: Option<WarmStart<'_>>,
    ) -> SolveResult {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let offset = warm_start.map_or(0, |w| w.step_offset);
        let x0: Vec<f64> = match warm_start {
            Some(w) => {
                assert_eq!(
                    w.x.len(),
                    problem.num_gates(),
                    "warm start: dimension mismatch"
                );
                w.x.to_vec()
            }
            None => vec![0.0; problem.num_gates()],
        };
        match self {
            Solver::Gd => gd::solve_with_offset(problem, config, &x0, offset),
            Solver::Scg => scg::solve_with_offset(problem, config, &x0, offset, &mut rng),
            Solver::ScgRs => sampling::solve_from(problem, config, &x0, offset, &mut rng),
            Solver::Cgnr => cgnr::solve_from(problem, config, &x0),
        }
    }
}

/// A warm start for [`Solver::solve_from`]: the previous fit's solution
/// and how far into the hyperbolic step-decay schedule to resume.
///
/// The offset is what makes warm starts *fast*, not just correct: the
/// stochastic solvers take steps `α ∝ 1/(1 + decay·t)`, and restarting
/// at `t = 0` means the first steps are large enough to knock a
/// near-optimal iterate away from the optimum it starts at — the solve
/// then spends its budget re-converging. Resuming at the previous
/// solve's cumulative iteration count continues the schedule as if the
/// perturbed rows had changed mid-run, so a near-optimal start stalls
/// (converges) within a couple of check windows. CGNR derives its step
/// from line search and ignores the offset.
#[derive(Debug, Clone, Copy)]
pub struct WarmStart<'a> {
    /// Starting iterate (a previous solve's `x*`).
    pub x: &'a [f64],
    /// Iterations already "spent" on the decay schedule.
    pub step_offset: usize,
}

impl<'a> WarmStart<'a> {
    /// Warm start from `x` at the top of the decay schedule.
    pub fn new(x: &'a [f64]) -> Self {
        WarmStart { x, step_offset: 0 }
    }

    /// Warm start from `x`, resuming the decay `step_offset` iterations
    /// in (typically the previous solve's iteration count).
    pub fn resumed(x: &'a [f64], step_offset: usize) -> Self {
        WarmStart { x, step_offset }
    }
}

impl std::fmt::Display for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Outcome of a solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResult {
    /// The fitted weights in problem column space.
    pub x: Vec<f64>,
    /// Iterations performed (inner iterations summed for `ScgRs`).
    pub iterations: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Final penalized objective value (exact, full rows).
    pub objective: f64,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
    /// Total row-gradient evaluations — the hardware-independent work
    /// measure used alongside wall time in the benches.
    pub rows_touched: u64,
    /// Why the stage was aborted by its guard (or a fault injection),
    /// `None` on a clean run. A faulted result must not be used; the
    /// fallback ladder demotes it.
    pub fault: Option<String>,
}

/// Which rung of the degradation ladder produced the accepted weights.
///
/// A failed solve demotes `requested solver → CGNR → GD → identity
/// weights`; identity (x = 0) leaves GBA slacks untouched, which is
/// always safe because GBA is pessimistic by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FallbackStage {
    /// The requested solver's result was accepted.
    Primary,
    /// Demoted to the deterministic CGNR reference.
    Cgnr,
    /// Demoted to full gradient descent.
    Gd,
    /// All solvers failed; identity weights (x = 0, raw GBA slacks).
    Identity,
}

impl FallbackStage {
    /// Stable lowercase name used in reports and metrics.
    pub fn name(self) -> &'static str {
        match self {
            FallbackStage::Primary => "primary",
            FallbackStage::Cgnr => "cgnr",
            FallbackStage::Gd => "gd",
            FallbackStage::Identity => "identity",
        }
    }

    /// Whether this stage means the calibration is serving raw GBA.
    pub fn is_degraded(self) -> bool {
        matches!(self, FallbackStage::Identity)
    }
}

impl std::fmt::Display for FallbackStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Accepts a stage result only when it is strictly usable: no guard
/// fault, a fully finite iterate, and an objective no worse than the
/// zero-weight starting point `f0` (a solver must never *add*
/// pessimism-correction error).
fn acceptable(r: &SolveResult, f0: f64) -> bool {
    r.fault.is_none()
        && r.objective.is_finite()
        && r.x.iter().all(|v| v.is_finite())
        && f0.is_finite()
        && r.objective <= f0 + f0.abs() * 1e-9 + 1e-12
}

/// Runs `solver` with the staged fallback ladder.
///
/// Stages are tried in order (requested solver, then [`Solver::Cgnr`],
/// then [`Solver::Gd`], skipping duplicates) until one passes the
/// acceptance check (no fault, finite iterate, objective no worse than
/// x = 0); otherwise identity weights (x = 0) are returned,
/// which reproduce raw GBA slacks. With `config.fallback == false` the
/// intermediate stages are skipped: the requested solver either passes
/// or the result drops straight to identity.
pub fn solve_with_fallback(
    solver: Solver,
    problem: &FitProblem,
    config: &MgbaConfig,
) -> (SolveResult, FallbackStage) {
    solve_with_fallback_from(solver, problem, config, None)
}

/// [`solve_with_fallback`] with an optional warm start.
///
/// The warm vector is threaded through *every* rung of the ladder — a
/// demotion (requested → CGNR → GD) resumes from the same `x0` rather
/// than re-deriving a cold start. Acceptance is still judged against the
/// zero-weight objective `f0`: a warm start that somehow lands worse
/// than identity weights is demoted all the way to identity, so a stale
/// or misleading `x0` can never make the served calibration worse than
/// raw GBA.
pub fn solve_with_fallback_from(
    solver: Solver,
    problem: &FitProblem,
    config: &MgbaConfig,
    warm_start: Option<WarmStart<'_>>,
) -> (SolveResult, FallbackStage) {
    let start = Instant::now();
    let f0 = problem.objective(&vec![0.0; problem.num_gates()]);
    let mut ladder: Vec<(Solver, FallbackStage)> = vec![(solver, FallbackStage::Primary)];
    if config.fallback {
        if solver != Solver::Cgnr {
            ladder.push((Solver::Cgnr, FallbackStage::Cgnr));
        }
        if solver != Solver::Gd {
            ladder.push((Solver::Gd, FallbackStage::Gd));
        }
    }
    let mut last_fault = None;
    for (stage_solver, stage) in ladder {
        let result = stage_solver.solve_from(problem, config, warm_start);
        if acceptable(&result, f0) {
            if stage != FallbackStage::Primary {
                obs::counter_add(&format!("mgba.fallback.{}", stage.name()), 1);
            }
            return (result, stage);
        }
        let reason = result
            .fault
            .clone()
            .unwrap_or_else(|| format!("unusable result (objective {})", result.objective));
        obs::counter_add("mgba.solver.stage_failed", 1);
        last_fault = Some(format!("{}: {reason}", stage_solver.paper_name()));
    }
    obs::counter_add("mgba.fallback.identity", 1);
    let n = problem.num_gates();
    (
        SolveResult {
            x: vec![0.0; n],
            iterations: 0,
            elapsed: start.elapsed(),
            objective: f0,
            converged: false,
            rows_touched: 0,
            fault: last_fault,
        },
        FallbackStage::Identity,
    )
}

/// Objective estimator over a fixed row subset, shared by GD and SCG for
/// their plateau-based convergence checks.
pub(crate) struct ObjectiveProbe {
    rows: Vec<usize>,
}

impl ObjectiveProbe {
    /// Probe over at most `cap` evenly spaced rows.
    pub(crate) fn new(problem: &FitProblem, cap: usize) -> Self {
        let m = problem.num_paths();
        let rows = if m <= cap {
            (0..m).collect()
        } else {
            (0..cap).map(|i| i * m / cap).collect()
        };
        Self { rows }
    }

    /// Estimates the penalized objective on the probe rows.
    pub(crate) fn estimate(&self, problem: &FitProblem, x: &[f64]) -> f64 {
        let mut f = 0.0;
        for &i in &self.rows {
            let ax = problem.matrix().row_dot(i, x);
            let r = ax - (problem.gba_slacks()[i] - problem.pba_slacks()[i]);
            f += r * r;
        }
        f
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::problem::FitProblem;
    use netlist::CellId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sparsela::CsrBuilder;

    /// A synthetic sparse fitting problem with a planted sparse solution:
    /// `s_pba = s_gba − A·x_true`, so the optimum of the unpenalized
    /// objective is exactly `x_true` (residual 0) when rows ≥ columns with
    /// full column coverage.
    pub(crate) fn planted(
        m: usize,
        n: usize,
        nnz_per_row: usize,
        sparsity: f64,
        seed: u64,
    ) -> (FitProblem, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x_true = vec![0.0; n];
        for xi in x_true.iter_mut() {
            if rng.random_bool(1.0 - sparsity) {
                *xi = rng.random_range(-0.25..-0.02);
            }
        }
        let mut builder = CsrBuilder::new(n);
        let mut s_gba = Vec::with_capacity(m);
        for i in 0..m {
            let mut row = Vec::with_capacity(nnz_per_row);
            // Guarantee column coverage: deterministic first column.
            row.push((i % n, rng.random_range(50.0..150.0)));
            for _ in 1..nnz_per_row {
                row.push((rng.random_range(0..n), rng.random_range(50.0..150.0)));
            }
            builder.push_row(&row);
            s_gba.push(-rng.random_range(50.0..500.0));
        }
        let a = builder.build();
        let ax = a.matvec(&x_true);
        let s_pba: Vec<f64> = s_gba.iter().zip(&ax).map(|(g, v)| g - v).collect();
        let columns = (0..n).map(CellId::new).collect();
        let p = FitProblem::from_parts(a, s_gba, s_pba, columns, 0.05, 4.0);
        (p, x_true)
    }

    /// A problem whose golden (PBA) slacks are all NaN — what a corrupted
    /// derate table upstream would produce. No solver stage can yield a
    /// finite objective on it, so the fallback ladder must bottom out at
    /// identity weights.
    pub(crate) fn poisoned(m: usize, n: usize, seed: u64) -> FitProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builder = CsrBuilder::new(n);
        let mut s_gba = Vec::with_capacity(m);
        for i in 0..m {
            builder.push_row(&[(i % n, rng.random_range(50.0..150.0))]);
            s_gba.push(-rng.random_range(50.0..500.0));
        }
        let a = builder.build();
        let s_pba = vec![f64::NAN; m];
        let columns = (0..n).map(CellId::new).collect();
        FitProblem::from_parts(a, s_gba, s_pba, columns, 0.05, 4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_names() {
        assert_eq!(Solver::Gd.paper_name(), "GD + w/o RS");
        assert_eq!(Solver::ScgRs.to_string(), "SCG + RS");
    }

    #[test]
    fn probe_covers_small_problems_fully() {
        let (p, _) = testutil::planted(50, 10, 4, 0.9, 1);
        let probe = ObjectiveProbe::new(&p, 100);
        let x = vec![0.0; p.num_gates()];
        // On a fully covered probe the estimate equals the unpenalized
        // objective (no violations at x = 0).
        assert!((probe.estimate(&p, &x) - p.objective(&x)).abs() < 1e-9);
    }

    #[test]
    fn fallback_stage_names_are_stable() {
        assert_eq!(FallbackStage::Primary.name(), "primary");
        assert_eq!(FallbackStage::Cgnr.name(), "cgnr");
        assert_eq!(FallbackStage::Gd.name(), "gd");
        assert_eq!(FallbackStage::Identity.to_string(), "identity");
        assert!(FallbackStage::Identity.is_degraded());
        assert!(!FallbackStage::Cgnr.is_degraded());
    }

    #[test]
    fn fallback_stays_primary_on_healthy_problems() {
        let (p, _) = testutil::planted(300, 40, 6, 0.9, 71);
        for solver in [Solver::Gd, Solver::Scg, Solver::ScgRs, Solver::Cgnr] {
            let (r, stage) = solve_with_fallback(solver, &p, &MgbaConfig::default());
            assert_eq!(stage, FallbackStage::Primary, "{solver}");
            assert!(r.fault.is_none(), "{solver}: {:?}", r.fault);
        }
    }

    #[test]
    fn fallback_is_bit_identical_to_direct_solve_when_healthy() {
        // The ladder must be a pure wrapper on the happy path: same
        // iterate, bit for bit, as calling the solver directly.
        let (p, _) = testutil::planted(300, 40, 6, 0.9, 72);
        let cfg = MgbaConfig::default();
        let direct = Solver::Scg.solve(&p, &cfg);
        let (laddered, _) = solve_with_fallback(Solver::Scg, &p, &cfg);
        assert_eq!(direct.x, laddered.x);
        assert_eq!(direct.iterations, laddered.iterations);
    }

    #[test]
    fn solve_from_none_is_bit_identical_to_cold_solve() {
        let (p, _) = testutil::planted(300, 40, 6, 0.9, 76);
        let cfg = MgbaConfig::default();
        for solver in [Solver::Gd, Solver::Scg, Solver::ScgRs, Solver::Cgnr] {
            let cold = solver.solve(&p, &cfg);
            let via = solver.solve_from(&p, &cfg, None);
            assert_eq!(cold.x, via.x, "{solver}");
            assert_eq!(cold.iterations, via.iterations, "{solver}");
        }
    }

    #[test]
    fn warm_start_converges_to_the_cold_optimum() {
        // Warm and cold starts must agree: the objective is convex, so
        // every solver lands at (or provably no worse than) the same
        // optimum when resumed from a previous solution.
        let (p, _) = testutil::planted(600, 50, 6, 0.9, 77);
        let cfg = MgbaConfig::default();
        let oracle = cgnr::solve(&p, &cfg);
        for solver in [Solver::Gd, Solver::Scg, Solver::ScgRs, Solver::Cgnr] {
            let warm = solver.solve_from(&p, &cfg, Some(WarmStart::new(&oracle.x)));
            let slack = oracle.objective.abs() * 0.05 + 1e-6;
            assert!(
                warm.objective <= oracle.objective + slack,
                "{solver}: warm {} vs oracle {}",
                warm.objective,
                oracle.objective
            );
        }
    }

    #[test]
    fn warm_ladder_is_bit_identical_to_direct_warm_solve_when_healthy() {
        // Same wrapper-purity pin as the cold variant: on the happy path
        // the ladder with a warm start returns exactly what the primary
        // solver returns from that start.
        let (p, _) = testutil::planted(300, 40, 6, 0.9, 78);
        let cfg = MgbaConfig::default();
        let seed_fit = cgnr::solve(&p, &cfg);
        let direct = Solver::Scg.solve_from(&p, &cfg, Some(WarmStart::new(&seed_fit.x)));
        let (laddered, stage) =
            solve_with_fallback_from(Solver::Scg, &p, &cfg, Some(WarmStart::new(&seed_fit.x)));
        assert_eq!(stage, FallbackStage::Primary);
        assert_eq!(direct.x, laddered.x);
        assert_eq!(direct.iterations, laddered.iterations);
    }

    #[test]
    fn unusable_warm_start_demotes_to_identity_not_worse() {
        // A hostile warm vector must never make the served weights worse
        // than identity: with the ladder disabled and an iteration budget
        // of zero, the primary solver returns the warm iterate unchanged,
        // its objective exceeds f0, and acceptance drops to identity.
        let (p, _) = testutil::planted(200, 30, 5, 0.9, 79);
        let cfg = MgbaConfig {
            fallback: false,
            max_iterations: 0,
            ..MgbaConfig::default()
        };
        let bad = vec![1e6; p.num_gates()];
        let (r, stage) = solve_with_fallback_from(Solver::Gd, &p, &cfg, Some(WarmStart::new(&bad)));
        assert_eq!(stage, FallbackStage::Identity);
        assert!(r.x.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn warm_start_poisoned_problem_still_bottoms_out_at_identity() {
        let p = testutil::poisoned(100, 20, 80);
        let warm = vec![-0.1; p.num_gates()];
        let (r, stage) = solve_with_fallback_from(
            Solver::ScgRs,
            &p,
            &MgbaConfig::default(),
            Some(WarmStart::new(&warm)),
        );
        assert_eq!(stage, FallbackStage::Identity);
        assert!(r.x.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn nan_golden_slacks_fall_back_to_identity() {
        let p = testutil::poisoned(100, 20, 73);
        for solver in [Solver::Gd, Solver::Scg, Solver::ScgRs, Solver::Cgnr] {
            let (r, stage) = solve_with_fallback(solver, &p, &MgbaConfig::default());
            assert_eq!(stage, FallbackStage::Identity, "{solver}");
            assert!(stage.is_degraded());
            assert!(r.x.iter().all(|v| *v == 0.0), "{solver}: x must be zero");
            assert!(r.fault.is_some(), "{solver}: demotion reason recorded");
        }
    }

    #[test]
    fn fallback_disabled_still_never_returns_poisoned_weights() {
        let p = testutil::poisoned(60, 10, 74);
        let cfg = MgbaConfig {
            fallback: false,
            ..MgbaConfig::default()
        };
        let (r, stage) = solve_with_fallback(Solver::Scg, &p, &cfg);
        assert_eq!(stage, FallbackStage::Identity);
        assert!(r.x.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn wall_clock_timeout_demotes_the_primary_stage() {
        // An effectively unreachable iteration cap plus a 1 ms budget: the
        // per-iteration deadline check must abort SCG long before the cap.
        let (p, _) = testutil::planted(4000, 200, 8, 0.95, 75);
        let cfg = MgbaConfig {
            solver_timeout_ms: 1,
            max_iterations: 100_000_000,
            inner_tolerance: 0.0,
            ..MgbaConfig::default()
        };
        let (r, stage) = solve_with_fallback(Solver::Scg, &p, &cfg);
        assert_ne!(stage, FallbackStage::Primary);
        // Whatever rung accepted, the result is usable: fully finite.
        assert!(r.x.iter().all(|v| v.is_finite()));
    }
}
