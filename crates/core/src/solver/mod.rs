//! Optimization solvers for the mGBA fitting problem.
//!
//! Three solvers matching the paper's Table 4 comparison, plus a
//! deterministic reference:
//!
//! | module       | paper name   | description |
//! |--------------|--------------|-------------|
//! | [`gd`]       | GD + w/o RS  | full-gradient descent over all rows |
//! | [`scg`]      | SCG + w/o RS | Algorithm 2: stochastic conjugate gradient with randomized-Kaczmarz row draws |
//! | [`sampling`] | SCG + RS     | Algorithm 1: uniform row sampling with doubling, SCG inner solver |
//! | [`cgnr`]     | —            | conjugate gradient on the normal equations with an active-set penalty loop; the accuracy oracle used for Fig. 3/Fig. 4 |
//! | [`ista`]     | —            | L1-regularized FISTA (extension): enforces the sparsity Fig. 3 observes |
//!
//! All stochastic solvers share the convergence rule: every
//! `check_window` iterations the penalized objective is estimated on a
//! fixed row subsample, and the solve stops when the relative improvement
//! over the window falls below `inner_tolerance` (the practical analogue
//! of the paper's relative-variation test, robust to stochastic noise).

pub mod cgnr;
pub mod gd;
pub mod ista;
pub mod sampling;
pub mod scg;

use crate::config::MgbaConfig;
use crate::problem::FitProblem;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Which solver to run (the paper's Table 4 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Solver {
    /// Gradient descent without row selection (`GD + w/o RS`).
    Gd,
    /// Stochastic conjugate gradient without row selection
    /// (`SCG + w/o RS`).
    Scg,
    /// Uniform row sampling with SCG inner solves (`SCG + RS`).
    ScgRs,
    /// Deterministic conjugate-gradient reference (not in the paper's
    /// comparison; used as the accuracy oracle).
    Cgnr,
}

impl Solver {
    /// Paper-style display name.
    pub fn paper_name(self) -> &'static str {
        match self {
            Solver::Gd => "GD + w/o RS",
            Solver::Scg => "SCG + w/o RS",
            Solver::ScgRs => "SCG + RS",
            Solver::Cgnr => "CGNR (reference)",
        }
    }

    /// Runs this solver on `problem` from a zero start.
    pub fn solve(self, problem: &FitProblem, config: &MgbaConfig) -> SolveResult {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let x0 = vec![0.0; problem.num_gates()];
        match self {
            Solver::Gd => gd::solve(problem, config, &x0),
            Solver::Scg => scg::solve(problem, config, &x0, &mut rng),
            Solver::ScgRs => sampling::solve(problem, config, &mut rng),
            Solver::Cgnr => cgnr::solve(problem, config),
        }
    }
}

impl std::fmt::Display for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Outcome of a solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResult {
    /// The fitted weights in problem column space.
    pub x: Vec<f64>,
    /// Iterations performed (inner iterations summed for `ScgRs`).
    pub iterations: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Final penalized objective value (exact, full rows).
    pub objective: f64,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
    /// Total row-gradient evaluations — the hardware-independent work
    /// measure used alongside wall time in the benches.
    pub rows_touched: u64,
}

/// Objective estimator over a fixed row subset, shared by GD and SCG for
/// their plateau-based convergence checks.
pub(crate) struct ObjectiveProbe {
    rows: Vec<usize>,
}

impl ObjectiveProbe {
    /// Probe over at most `cap` evenly spaced rows.
    pub(crate) fn new(problem: &FitProblem, cap: usize) -> Self {
        let m = problem.num_paths();
        let rows = if m <= cap {
            (0..m).collect()
        } else {
            (0..cap).map(|i| i * m / cap).collect()
        };
        Self { rows }
    }

    /// Estimates the penalized objective on the probe rows.
    pub(crate) fn estimate(&self, problem: &FitProblem, x: &[f64]) -> f64 {
        let mut f = 0.0;
        for &i in &self.rows {
            let ax = problem.matrix().row_dot(i, x);
            let r = ax - (problem.gba_slacks()[i] - problem.pba_slacks()[i]);
            f += r * r;
        }
        f
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::problem::FitProblem;
    use netlist::CellId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sparsela::CsrBuilder;

    /// A synthetic sparse fitting problem with a planted sparse solution:
    /// `s_pba = s_gba − A·x_true`, so the optimum of the unpenalized
    /// objective is exactly `x_true` (residual 0) when rows ≥ columns with
    /// full column coverage.
    pub(crate) fn planted(
        m: usize,
        n: usize,
        nnz_per_row: usize,
        sparsity: f64,
        seed: u64,
    ) -> (FitProblem, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x_true = vec![0.0; n];
        for xi in x_true.iter_mut() {
            if rng.random_bool(1.0 - sparsity) {
                *xi = rng.random_range(-0.25..-0.02);
            }
        }
        let mut builder = CsrBuilder::new(n);
        let mut s_gba = Vec::with_capacity(m);
        for i in 0..m {
            let mut row = Vec::with_capacity(nnz_per_row);
            // Guarantee column coverage: deterministic first column.
            row.push((i % n, rng.random_range(50.0..150.0)));
            for _ in 1..nnz_per_row {
                row.push((rng.random_range(0..n), rng.random_range(50.0..150.0)));
            }
            builder.push_row(&row);
            s_gba.push(-rng.random_range(50.0..500.0));
        }
        let a = builder.build();
        let ax = a.matvec(&x_true);
        let s_pba: Vec<f64> = s_gba.iter().zip(&ax).map(|(g, v)| g - v).collect();
        let columns = (0..n).map(CellId::new).collect();
        let p = FitProblem::from_parts(a, s_gba, s_pba, columns, 0.05, 4.0);
        (p, x_true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_names() {
        assert_eq!(Solver::Gd.paper_name(), "GD + w/o RS");
        assert_eq!(Solver::ScgRs.to_string(), "SCG + RS");
    }

    #[test]
    fn probe_covers_small_problems_fully() {
        let (p, _) = testutil::planted(50, 10, 4, 0.9, 1);
        let probe = ObjectiveProbe::new(&p, 100);
        let x = vec![0.0; p.num_gates()];
        // On a fully covered probe the estimate equals the unpenalized
        // objective (no violations at x = 0).
        assert!((probe.estimate(&p, &x) - p.objective(&x)).abs() < 1e-9);
    }
}
