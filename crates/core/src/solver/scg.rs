//! Stochastic conjugate gradient — the paper's Algorithm 2.
//!
//! Each iteration:
//!
//! 1. draws `k''` rows with probability proportional to their squared
//!    Euclidean norm (the randomized-Kaczmarz distribution, Eq. (11));
//! 2. accumulates the penalized gradient over just those rows;
//! 3. normalizes the gradient (line 6);
//! 4. combines it with the previous direction via the Polak–Ribière
//!    parameter (line 7, with the standard PR⁺ non-negativity clamp for
//!    stochastic stability);
//! 5. steps with the dynamic size `α = s / ‖d‖` (line 9), decayed
//!    hyperbolically over iterations so the stochastic iterates settle.

use crate::config::MgbaConfig;
use crate::problem::FitProblem;
use crate::solver::guard::SolveGuard;
use crate::solver::{ObjectiveProbe, SolveResult};
use rand::rngs::StdRng;
use sparsela::sampling::NormSampler;
use sparsela::vecops;
use std::time::Instant;

/// Runs Algorithm 2 from `x0`.
pub fn solve(
    problem: &FitProblem,
    config: &MgbaConfig,
    x0: &[f64],
    rng: &mut StdRng,
) -> SolveResult {
    solve_with_offset(problem, config, x0, 0, rng)
}

/// Runs Algorithm 2 with the step-decay schedule advanced by
/// `step_offset` iterations. Used by Algorithm 1's doubling rounds so a
/// warm-started round *refines* the previous solution with proportionally
/// smaller steps instead of kicking it around at full step size.
pub fn solve_with_offset(
    problem: &FitProblem,
    config: &MgbaConfig,
    x0: &[f64],
    step_offset: usize,
    rng: &mut StdRng,
) -> SolveResult {
    let _span = obs::span("scg");
    obs::telemetry::solve_begin("SCG + w/o RS");
    let start = Instant::now();
    let m = problem.num_paths();
    let n = problem.num_gates();
    let mut x = x0.to_vec();
    if m == 0 || n == 0 {
        let objective = problem.objective(&x);
        obs::telemetry::solve_end(true, 0, 0, Some(objective));
        return SolveResult {
            objective,
            x,
            iterations: 0,
            elapsed: start.elapsed(),
            converged: true,
            rows_touched: 0,
            fault: None,
        };
    }

    // Line 3 of Algorithm 2: row probabilities ∝ ‖a_j‖² (computed once —
    // the matrix is fixed during the solve).
    let norms = problem.matrix().row_norms_sq();
    let Some(sampler) = NormSampler::new(&norms) else {
        // All-zero matrix (paths with no gates): nothing to fit.
        let objective = problem.objective(&x);
        obs::telemetry::solve_end(true, 0, 0, Some(objective));
        return SolveResult {
            objective,
            x,
            iterations: 0,
            elapsed: start.elapsed(),
            converged: true,
            rows_touched: 0,
            fault: None,
        };
    };
    let k = ((m as f64 * config.row_fraction).ceil() as usize).clamp(1, m);

    let probe = ObjectiveProbe::new(problem, 512);
    let mut best_obj = probe.estimate(problem, &x);
    // Absolute floor: when the probe objective is already negligible
    // relative to the problem scale, the system is solved.
    let floor = 1e-12 * vecops::norm2_sq(problem.pba_slacks()).max(1e-30);
    if best_obj <= floor {
        let objective = problem.objective(&x);
        obs::telemetry::solve_end(true, 0, 0, Some(objective));
        return SolveResult {
            objective,
            x,
            iterations: 0,
            elapsed: start.elapsed(),
            converged: true,
            rows_touched: 0,
            fault: None,
        };
    }
    let mut guard = SolveGuard::new(config, best_obj);
    let mut fault: Option<String> = None;
    let mut g_prev: Vec<f64> = vec![0.0; n];
    let mut d: Vec<f64> = vec![0.0; n];
    let mut have_prev = false;
    let mut g = vec![0.0; n];
    let mut converged = false;
    let mut stalled = 0usize;
    let mut iterations = 0;
    let mut rows_touched = 0u64;

    while iterations < config.max_iterations {
        // Free when no deadline is configured (a single Option match).
        if let Err(e) = guard.check_deadline() {
            fault = Some(e);
            break;
        }
        match faultinject::fire("solver.iter") {
            Some(faultinject::Fault::Nan) => {
                // Poison the iterate the way a corrupt upstream derate
                // would: the guard must catch it at the next window.
                if let Some(x0) = x.first_mut() {
                    *x0 = f64::NAN;
                }
            }
            Some(faultinject::Fault::Error) => {
                fault = Some("failpoint `solver.iter`: injected error".into());
                break;
            }
            None => {}
        }
        // Lines 4–5: sample k'' rows, accumulate their gradient.
        g.fill(0.0);
        for _ in 0..k {
            let row = sampler.draw(rng);
            problem.accumulate_row_gradient(row, &x, &mut g);
        }
        rows_touched += k as u64;
        // Line 6: normalize. A zero *sampled* gradient is not evidence of
        // optimality (the drawn rows may simply have zero residual) —
        // skip the step; the windowed objective check handles genuine
        // convergence.
        let gnorm = vecops::normalize(&mut g);
        if let Err(e) = guard.check_value("gradient norm", gnorm) {
            fault = Some(e);
            break;
        }
        if gnorm == 0.0 {
            iterations += 1;
            have_prev = false;
            let mut window_obj = None;
            if iterations.is_multiple_of(config.check_window) {
                let obj = probe.estimate(problem, &x);
                window_obj = Some(obj);
                if let Err(e) = guard.check_window(obj, vecops::norm2_sq(&x)) {
                    fault = Some(e);
                } else if obj <= floor || obj >= best_obj * (1.0 - config.inner_tolerance) {
                    converged = true;
                } else {
                    best_obj = obj;
                }
            }
            obs::telemetry::record_iteration(
                (iterations - 1) as u64,
                window_obj,
                0.0,
                0.0,
                k as u64,
            );
            if converged || fault.is_some() {
                break;
            }
            continue;
        }
        // Line 7: Polak–Ribière (g_prev is unit-norm, so the denominator
        // ‖g_prev‖² is 1); PR⁺ clamp keeps stochastic directions stable.
        let beta = if have_prev {
            let mut num = 0.0;
            for j in 0..n {
                num += g[j] * (g[j] - g_prev[j]);
            }
            num.max(0.0)
        } else {
            0.0
        };
        // Line 8: conjugate direction.
        for j in 0..n {
            d[j] = -g[j] + beta * d[j];
        }
        // Line 9: dynamic step size with hyperbolic decay.
        let d_norm = vecops::norm2(&d);
        if d_norm == 0.0 {
            obs::telemetry::record_iteration(iterations as u64, None, gnorm, 0.0, k as u64);
            converged = true;
            break;
        }
        let alpha = config.step_size
            / ((1.0 + config.step_decay * (step_offset + iterations) as f64) * d_norm);
        // Line 10: update.
        vecops::axpy(alpha, &d, &mut x);
        g_prev.copy_from_slice(&g);
        have_prev = true;
        iterations += 1;

        // Line 2's relative-variation test, applied to the objective
        // estimate over a window to de-noise the stochastic steps.
        let mut window_obj = None;
        if iterations.is_multiple_of(config.check_window) {
            let obj = probe.estimate(problem, &x);
            window_obj = Some(obj);
            if let Err(e) = guard.check_window(obj, vecops::norm2_sq(&x)) {
                fault = Some(e);
            } else if obj <= floor {
                converged = true;
            } else if obj < best_obj * (1.0 - config.inner_tolerance) {
                best_obj = obj;
                stalled = 0;
            } else {
                stalled += 1;
                if stalled >= 2 {
                    converged = true;
                }
            }
        }
        obs::telemetry::record_iteration(
            (iterations - 1) as u64,
            window_obj,
            gnorm,
            alpha,
            k as u64,
        );
        if converged || fault.is_some() {
            break;
        }
    }

    let objective = problem.objective(&x);
    obs::telemetry::solve_end(converged, iterations as u64, rows_touched, Some(objective));
    SolveResult {
        objective,
        x,
        iterations,
        elapsed: start.elapsed(),
        converged,
        rows_touched,
        fault,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::testutil::planted;
    use rand::SeedableRng;

    #[test]
    fn scg_reduces_objective_substantially() {
        let (p, _) = planted(600, 60, 8, 0.9, 21);
        let x0 = vec![0.0; p.num_gates()];
        let f0 = p.objective(&x0);
        let mut rng = StdRng::seed_from_u64(1);
        let r = solve(&p, &MgbaConfig::default(), &x0, &mut rng);
        assert!(r.objective < 0.15 * f0, "{} !< 0.15·{}", r.objective, f0);
    }

    #[test]
    fn scg_touches_fewer_rows_per_iteration_than_gd() {
        let (p, _) = planted(1000, 50, 6, 0.9, 22);
        let x0 = vec![0.0; p.num_gates()];
        let mut rng = StdRng::seed_from_u64(2);
        let r = solve(&p, &MgbaConfig::default(), &x0, &mut rng);
        // 2% of 1000 rows = 20 rows per iteration.
        assert_eq!(r.rows_touched, 20 * r.iterations as u64);
    }

    #[test]
    fn scg_deterministic_given_seed() {
        let (p, _) = planted(300, 40, 6, 0.9, 23);
        let x0 = vec![0.0; p.num_gates()];
        let a = solve(
            &p,
            &MgbaConfig::default(),
            &x0,
            &mut StdRng::seed_from_u64(3),
        );
        let b = solve(
            &p,
            &MgbaConfig::default(),
            &x0,
            &mut StdRng::seed_from_u64(3),
        );
        assert_eq!(a.x, b.x);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn scg_warm_start_helps() {
        let (p, x_true) = planted(400, 40, 6, 0.9, 24);
        let cold = vec![0.0; p.num_gates()];
        let mut rng = StdRng::seed_from_u64(4);
        let r_cold = solve(&p, &MgbaConfig::default(), &cold, &mut rng);
        let mut rng = StdRng::seed_from_u64(4);
        let r_warm = solve(&p, &MgbaConfig::default(), &x_true, &mut rng);
        // Warm-started from the planted optimum, the solve stays at (or
        // improves on) the cold result with fewer or equal iterations.
        assert!(r_warm.objective <= r_cold.objective + 1e-6);
    }

    #[test]
    fn scg_handles_empty_problem() {
        let (p, _) = planted(10, 5, 2, 0.9, 25);
        let sub = p.subproblem(&[]);
        let mut rng = StdRng::seed_from_u64(5);
        let r = solve(&sub, &MgbaConfig::default(), &[0.0; 5], &mut rng);
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn scg_constraint_violations_stay_bounded() {
        // The penalty keeps the solution from overshooting into
        // optimistic territory: violations at the solution are rare.
        let (p, _) = planted(500, 50, 6, 0.85, 26);
        let x0 = vec![0.0; p.num_gates()];
        let mut rng = StdRng::seed_from_u64(6);
        let r = solve(&p, &MgbaConfig::default(), &x0, &mut rng);
        let frac = p.violations(&r.x) as f64 / p.num_paths() as f64;
        assert!(frac < 0.2, "violation fraction {frac} too high");
    }
}
