//! # mGBA — modified graph-based timing analysis
//!
//! Reproduction of *"A General Graph Based Pessimism Reduction Framework
//! for Design Optimization of Timing Closure"* (DAC 2018).
//!
//! GBA timing is fast but pessimistic; PBA is accurate but unusably slow
//! inside optimization loops. mGBA fits a per-gate weighting factor so
//! that GBA-style slack calculation matches golden PBA slacks on the
//! critical paths, then folds the weights back into the timing graph —
//! keeping graph-based speed at near-path-based accuracy.
//!
//! The pipeline ([`run_mgba`]):
//!
//! 1. **Select** critical paths per endpoint ([`select`], paper §3.2);
//! 2. **Label** them with golden PBA slacks ([`sta::pba`]);
//! 3. **Assemble** the constrained least-squares problem ([`problem`],
//!    Eq. (5)–(9));
//! 4. **Solve** with the accelerated solver stack ([`solver`]):
//!    uniform row sampling (Algorithm 1) over stochastic conjugate
//!    gradient (Algorithm 2);
//! 5. **Apply** the weights to the timing engine
//!    ([`sta::Sta::set_weights`]) and report accuracy ([`metrics`]).
//!
//! # Example
//!
//! ```
//! use mgba::{run_mgba, MgbaConfig, Solver};
//! use netlist::GeneratorConfig;
//! use sta::{DerateSet, Sdc, Sta};
//!
//! # fn main() -> Result<(), netlist::BuildError> {
//! let design = GeneratorConfig::small(3).generate();
//! let mut sta = Sta::new(design, Sdc::with_period(900.0), DerateSet::standard())?;
//! let report = run_mgba(&mut sta, &MgbaConfig::default(), Solver::ScgRs);
//! // The corrected slacks track PBA far better than original GBA.
//! assert!(report.pass_after.ratio() >= report.pass_before.ratio());
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod error;
pub mod load;
pub mod metrics;
pub mod problem;
pub mod report;
pub mod select;
pub mod solver;
pub mod weights_io;

pub use config::{MgbaConfig, MgbaConfigBuilder};
pub use error::{MgbaError, ParseError};
pub use load::{auto_period, build_engine, load_design_or_file, load_netlist_file, parse_design};
pub use metrics::{PassRatio, PASS_ABS_TOL, PASS_REL_TOL};
pub use problem::FitProblem;
pub use report::{AccuracyReport, EndpointAccuracy, StageAccuracy};
pub use select::{select_paths, Selection, SelectionScheme};
pub use solver::{
    solve_with_fallback, solve_with_fallback_from, FallbackStage, SolveResult, Solver, WarmStart,
};
pub use weights_io::{
    apply_weights, atomic_write_text, parse_weights, read_weights_file, write_weights,
    write_weights_file, WeightsError,
};

/// One-import facade for the select → fit → solve → fold-back pipeline.
///
/// Brings in everything a typical calibration driver touches: the engine
/// ([`Sta`]) and its inputs, the fit configuration and its
/// builder, the solver stack, and the typed error. Flow-level types
/// (`FlowConfig`, `run_flow`) live in `optim::prelude`, which re-exports
/// this one.
pub mod prelude {
    pub use crate::config::{MgbaConfig, MgbaConfigBuilder};
    pub use crate::error::{MgbaError, ParseError};
    pub use crate::load::{
        auto_period, build_engine, load_design_or_file, load_netlist_file, parse_design,
    };
    pub use crate::metrics::PassRatio;
    pub use crate::problem::FitProblem;
    pub use crate::report::AccuracyReport;
    pub use crate::select::{select_paths, Selection, SelectionScheme};
    pub use crate::solver::{FallbackStage, SolveResult, Solver, WarmStart};
    pub use crate::weights_io::{
        atomic_write_text, parse_weights, read_weights_file, write_weights, write_weights_file,
    };
    pub use crate::{
        recalibrate_warm, run_mgba, run_mgba_cached, run_mgba_with_accuracy, CalibrationCache,
        MgbaReport, RecalibrateReport,
    };
    pub use netlist::{DesignSpec, GeneratorConfig, Netlist};
    pub use sta::{DerateSet, Sdc, Sta};
}

use netlist::CellId;
use serde::{Deserialize, Serialize};
use sta::{gba_path_timing_batch, pba_timing_batch, Path, Sta};
use std::time::Duration;

/// Summary of one end-to-end mGBA run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MgbaReport {
    /// Design name.
    pub design: String,
    /// Solver used.
    pub solver_name: String,
    /// Selected (fitted) timing paths.
    pub num_paths: usize,
    /// Gates appearing on selected paths (problem columns).
    pub num_gates: usize,
    /// Gate coverage of the selection, `[0, 1]`.
    pub coverage: f64,
    /// Modelling squared error (Eq. 12) of original GBA vs. PBA.
    pub mse_before: f64,
    /// Modelling squared error of mGBA (weights applied) vs. PBA.
    pub mse_after: f64,
    /// Pass ratio (Table 3 rule) of original GBA.
    pub pass_before: PassRatio,
    /// Pass ratio of mGBA.
    pub pass_after: PassRatio,
    /// Solver iterations.
    pub iterations: usize,
    /// Solver wall time.
    pub solve_time: Duration,
    /// Row-gradient evaluations performed by the solver.
    pub rows_touched: u64,
    /// Whether the solver reported convergence.
    pub converged: bool,
    /// Which rung of the degradation ladder produced the weights
    /// ([`FallbackStage::Primary`] on a healthy run).
    pub fallback: FallbackStage,
    /// Why solver stages were demoted, when any were (`None` on a
    /// healthy run).
    pub solver_fault: Option<String>,
    /// The fitted per-cell weights (netlist cell space).
    pub weights: Vec<f64>,
}

/// Runs the full mGBA flow on `sta`: selects critical paths, fits the
/// weights with `solver`, installs them via [`Sta::set_weights`], and
/// reports before/after accuracy against golden PBA.
///
/// Any previously installed weights are cleared first (the fit is always
/// against original GBA). If the design has no candidate paths (e.g.
/// `only_violating` and nothing violates), the engine is left at original
/// GBA and the report shows zero paths.
pub fn run_mgba(sta: &mut Sta, config: &MgbaConfig, solver: Solver) -> MgbaReport {
    run_mgba_inner(sta, config, solver).0
}

/// Like [`run_mgba`], but also computes the per-endpoint/per-stage
/// accuracy dashboard ([`AccuracyReport`]) from the same per-path slack
/// vectors the summary metrics are built from — no extra PBA retimes.
pub fn run_mgba_with_accuracy(
    sta: &mut Sta,
    config: &MgbaConfig,
    solver: Solver,
) -> (MgbaReport, AccuracyReport) {
    let (report, samples, _) = run_mgba_inner(sta, config, solver);
    let accuracy = AccuracyReport::compute(sta, &report, config, &samples);
    (report, accuracy)
}

/// Like [`run_mgba`], but also hands back the calibration state an
/// incremental driver needs for warm refits ([`recalibrate_warm`]):
/// the selected paths, the assembled fit problem (with its cached
/// transpose), and the fitted solution `x*`.
///
/// `None` when there was nothing to calibrate (no candidate paths) or
/// the fit-matrix build was fault-injected away — a driver must fall
/// back to a cold [`run_mgba`] on the next change in that case.
pub fn run_mgba_cached(
    sta: &mut Sta,
    config: &MgbaConfig,
    solver: Solver,
) -> (MgbaReport, Option<CalibrationCache>) {
    let (report, _, cache) = run_mgba_inner(sta, config, solver);
    (report, cache)
}

/// Reusable state of a completed calibration, for warm incremental
/// refits after committed netlist edits.
#[derive(Debug, Clone)]
pub struct CalibrationCache {
    /// The selected paths; row `i` of `fit` models `paths[i]`. The path
    /// set is frozen at calibration time — a warm refit re-times these
    /// paths on the edited design rather than re-selecting (the `full`
    /// escape hatch exists for edits large enough to change criticality).
    pub paths: Vec<Path>,
    /// The assembled fit problem, patched in place by warm refits.
    pub fit: FitProblem,
    /// The fitted column-space solution `x*` of the most recent solve.
    pub x: Vec<f64>,
    /// Cumulative solver iterations behind `x` — warm refits resume the
    /// stochastic solvers' step-decay schedule here, so a near-optimal
    /// start is refined with converged-scale steps instead of being
    /// knocked away by fresh full-size ones.
    pub step_offset: usize,
}

/// Summary of one incremental warm recalibration ([`recalibrate_warm`]).
///
/// Deliberately carries no wall-clock field: everything here is a
/// deterministic function of the design and the config, so it is safe to
/// embed in reproducible server responses and bench baselines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecalibrateReport {
    /// Rows whose coefficients/slacks were rebuilt.
    pub dirty_rows: usize,
    /// Total rows in the fit problem.
    pub total_rows: usize,
    /// Solver iterations of the warm solve.
    pub iterations: usize,
    /// Row-gradient evaluations of the warm solve.
    pub rows_touched: u64,
    /// Whether the warm solve reported convergence.
    pub converged: bool,
    /// Which rung of the degradation ladder produced the weights.
    pub fallback: FallbackStage,
    /// Why solver stages were demoted, when any were.
    pub solver_fault: Option<String>,
    /// Fit-space modelling error of the stale `x*` on the patched
    /// problem, before the warm solve.
    pub mse_before: f64,
    /// Fit-space modelling error after the warm solve.
    pub mse_after: f64,
}

/// Incrementally recalibrates after committed netlist edits: patches only
/// the fit-problem rows invalidated by `dirty_cells`, warm-starts the
/// solver from the cached `x*`, and installs the refreshed weights.
///
/// `dirty_cells` is the union of [`Sta::last_touched`] captured
/// *immediately after each committed edit* (weight installs clear it).
/// The capture may run with weights still applied: the forward pass
/// re-evaluates a superset of the cells whose weight-independent
/// quantities moved — slews change only at re-characterized seeds, gate
/// delays only at seeds and their fanout, and clock arrivals are
/// weight-independent — so the set is conservative for the zero-weight
/// fit this function runs.
///
/// The objective is convex, so the warm solve converges to the same
/// optimum a cold solve would (within solver tolerance) — just in fewer
/// iterations when the edit was local. The fallback ladder still judges
/// the warm result against the zero vector, so a pathological warm start
/// can only demote, never regress below identity.
pub fn recalibrate_warm(
    sta: &mut Sta,
    config: &MgbaConfig,
    solver: Solver,
    cache: &mut CalibrationCache,
    dirty_cells: &[CellId],
) -> RecalibrateReport {
    let _span = obs::span("recalibrate");
    // The fit always runs against original GBA.
    sta.clear_weights();
    let rows = cache.fit.dirty_rows(sta, &cache.paths, dirty_cells);
    cache.fit.patch_rows(sta, &cache.paths, &rows);
    obs::counter_add("mgba.recalibrate.warm", 1);
    obs::counter_add("mgba.recalibrate.dirty_rows", rows.len() as u64);
    let mse_before = cache.fit.mse(&cache.x);
    let (result, fallback) = {
        let _span = obs::span("solve");
        let warm = solver::WarmStart::resumed(&cache.x, cache.step_offset);
        solver::solve_with_fallback_from(solver, &cache.fit, config, Some(warm))
    };
    cache.x = result.x;
    cache.step_offset = cache.step_offset.saturating_add(result.iterations);
    let weights = {
        let _span = obs::span("fold_back");
        cache
            .fit
            .to_cell_weights(&cache.x, sta.netlist().num_cells())
    };
    sta.set_weights(&weights);
    RecalibrateReport {
        dirty_rows: rows.len(),
        total_rows: cache.fit.num_paths(),
        iterations: result.iterations,
        rows_touched: result.rows_touched,
        converged: result.converged,
        fallback,
        solver_fault: result.fault,
        mse_before,
        mse_after: cache.fit.mse(&cache.x),
    }
}

/// One fitted path's slack under the three timing views, plus the
/// grouping keys the accuracy dashboard aggregates by.
#[derive(Debug, Clone)]
pub(crate) struct PathSample {
    /// Endpoint cell id of the path.
    pub endpoint: netlist::CellId,
    /// Gates (stages) on the path.
    pub gates: usize,
    /// Original GBA slack.
    pub gba: f64,
    /// Golden PBA slack.
    pub pba: f64,
    /// Corrected (weights-applied) mGBA slack.
    pub mgba: f64,
}

fn run_mgba_inner(
    sta: &mut Sta,
    config: &MgbaConfig,
    solver: Solver,
) -> (MgbaReport, Vec<PathSample>, Option<CalibrationCache>) {
    let _span = obs::span("mgba");
    sta.clear_weights();
    let selection = {
        let _span = obs::span("select");
        select_paths(
            sta,
            SelectionScheme::PerEndpoint {
                k: config.paths_per_endpoint,
                max_total: config.max_paths,
            },
            config.only_violating,
        )
    };
    obs::counter_add("mgba.paths_selected", selection.paths.len() as u64);
    let design = sta.netlist().name().to_owned();
    if selection.paths.is_empty() {
        let report = MgbaReport {
            design,
            solver_name: solver.paper_name().to_owned(),
            num_paths: 0,
            num_gates: 0,
            coverage: 0.0,
            mse_before: 0.0,
            mse_after: 0.0,
            pass_before: PassRatio {
                passing: 0,
                total: 0,
            },
            pass_after: PassRatio {
                passing: 0,
                total: 0,
            },
            iterations: 0,
            solve_time: Duration::ZERO,
            rows_touched: 0,
            converged: true,
            fallback: FallbackStage::Primary,
            solver_fault: None,
            weights: vec![0.0; sta.netlist().num_cells()],
        };
        return (report, Vec::new(), None);
    }

    if let Some(fault) = faultinject::fire("fit.build") {
        // An injected fit-matrix failure degrades to identity weights
        // (raw GBA) instead of erroring: this is the "recovery + recorded
        // fallback stage" path of the fault model.
        obs::counter_add("mgba.fallback.identity", 1);
        let report = MgbaReport {
            design,
            solver_name: solver.paper_name().to_owned(),
            num_paths: selection.paths.len(),
            num_gates: 0,
            coverage: selection.coverage(),
            mse_before: 0.0,
            mse_after: 0.0,
            pass_before: PassRatio {
                passing: 0,
                total: 0,
            },
            pass_after: PassRatio {
                passing: 0,
                total: 0,
            },
            iterations: 0,
            solve_time: Duration::ZERO,
            rows_touched: 0,
            converged: false,
            fallback: FallbackStage::Identity,
            solver_fault: Some(format!("failpoint `fit.build`: injected {fault:?}")),
            weights: vec![0.0; sta.netlist().num_cells()],
        };
        return (report, Vec::new(), None);
    }
    let par = config.parallelism();
    let fit = FitProblem::build_par(sta, &selection.paths, config.epsilon, config.penalty, par);
    let (result, fallback) = {
        let _span = obs::span("solve");
        solver::solve_with_fallback(solver, &fit, config)
    };
    let weights = {
        let _span = obs::span("fold_back");
        fit.to_cell_weights(&result.x, sta.netlist().num_cells())
    };

    // Before/after accuracy, measured on the actual timing engine (the
    // non-negativity clamp on λ·(1+x) is part of mGBA, so the report
    // reflects it). The per-path retimes fan out over the configured
    // thread count; results are identical for every width.
    let golden: Vec<f64> = {
        let _span = obs::span("evaluate");
        pba_timing_batch(sta, &selection.paths, par)
            .iter()
            .map(|t| t.slack)
            .collect()
    };
    let before: Vec<f64> = selection.paths.iter().map(|p| p.gba_slack).collect();
    {
        let _span = obs::span("fold_back");
        sta.set_weights(&weights);
    }
    let after: Vec<f64> = {
        let _span = obs::span("evaluate");
        gba_path_timing_batch(sta, &selection.paths, par)
            .iter()
            .map(|t| t.slack)
            .collect()
    };

    let report = MgbaReport {
        design,
        solver_name: solver.paper_name().to_owned(),
        num_paths: selection.paths.len(),
        num_gates: fit.num_gates(),
        coverage: selection.coverage(),
        mse_before: metrics::mse(&before, &golden),
        mse_after: metrics::mse(&after, &golden),
        pass_before: PassRatio::compute(&before, &golden),
        pass_after: PassRatio::compute(&after, &golden),
        iterations: result.iterations,
        solve_time: result.elapsed,
        rows_touched: result.rows_touched,
        converged: result.converged,
        fallback,
        solver_fault: result.fault,
        weights,
    };
    obs::counter_add("mgba.fit.gates", report.num_gates as u64);
    obs::gauge_set(
        "mgba.fallback.degraded",
        if report.fallback.is_degraded() {
            1.0
        } else {
            0.0
        },
    );
    obs::gauge_set("mgba.mse_before", report.mse_before);
    obs::gauge_set("mgba.mse_after", report.mse_after);
    obs::gauge_set("mgba.pass_ratio_before", report.pass_before.ratio());
    obs::gauge_set("mgba.pass_ratio_after", report.pass_after.ratio());
    let samples = selection
        .paths
        .iter()
        .zip(before.iter().zip(golden.iter().zip(after.iter())))
        .map(|(p, (&gba, (&pba, &mgba)))| PathSample {
            endpoint: p.endpoint,
            gates: p.num_gates(),
            gba,
            pba,
            mgba,
        })
        .collect();
    let cache = CalibrationCache {
        paths: selection.paths,
        fit,
        x: result.x,
        step_offset: report.iterations,
    };
    (report, samples, Some(cache))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GeneratorConfig;
    use sta::{gba_path_timing, pba_timing, DerateSet, Sdc};

    /// An engine whose clock period guarantees setup violations.
    fn tight_engine(seed: u64) -> Sta {
        let n = GeneratorConfig::small(seed).generate();
        let probe = Sta::new(n.clone(), Sdc::with_period(10_000.0), DerateSet::standard()).unwrap();
        let max_arrival = probe
            .netlist()
            .endpoints()
            .iter()
            .map(|&e| probe.endpoint_arrival(e))
            .filter(|a| a.is_finite())
            .fold(0.0, f64::max);
        // Probe WNS first: slack shifts 1:1 with the period, so this
        // guarantees deep violations regardless of clock insertion delay.
        let period = 10_000.0 - probe.wns() - 0.15 * max_arrival;
        Sta::new(n, Sdc::with_period(period), DerateSet::standard()).unwrap()
    }

    #[test]
    fn mgba_improves_accuracy_end_to_end() {
        let mut sta = tight_engine(111);
        let report = run_mgba(&mut sta, &MgbaConfig::default(), Solver::ScgRs);
        assert!(report.num_paths > 0, "tight period must yield violations");
        assert!(
            report.mse_after < report.mse_before,
            "mse {} must improve to {}",
            report.mse_before,
            report.mse_after
        );
        assert!(report.pass_after.ratio() >= report.pass_before.ratio());
    }

    #[test]
    fn all_solvers_improve_accuracy() {
        for solver in [Solver::Gd, Solver::Scg, Solver::ScgRs, Solver::Cgnr] {
            let mut sta = tight_engine(112);
            let report = run_mgba(&mut sta, &MgbaConfig::default(), solver);
            assert!(
                report.mse_after < report.mse_before,
                "{solver}: {} !< {}",
                report.mse_after,
                report.mse_before
            );
        }
    }

    #[test]
    fn weights_installed_on_engine() {
        let mut sta = tight_engine(113);
        let report = run_mgba(&mut sta, &MgbaConfig::default(), Solver::Cgnr);
        let nonzero = report.weights.iter().filter(|w| **w != 0.0).count();
        assert!(nonzero > 0);
        // Engine carries the weights.
        let installed = (0..sta.netlist().num_cells())
            .filter(|&i| sta.gate_weight(netlist::CellId::new(i)) != 0.0)
            .count();
        assert_eq!(installed, nonzero);
    }

    #[test]
    fn mgba_never_beats_pba_optimism_by_much() {
        // The constraint/penalty keeps mGBA on the pessimistic side:
        // corrected slack stays at or below (PBA + tolerance) for almost
        // all paths.
        let mut sta = tight_engine(114);
        let config = MgbaConfig::default();
        let report = run_mgba(&mut sta, &config, Solver::Cgnr);
        assert!(report.num_paths > 0);
        let selection = select_paths(
            &sta,
            SelectionScheme::PerEndpoint {
                k: config.paths_per_endpoint,
                max_total: config.max_paths,
            },
            false,
        );
        let mut optimistic = 0usize;
        let mut checked = 0usize;
        for p in &selection.paths {
            let pba = pba_timing(&sta, p).slack;
            let mgba = gba_path_timing(&sta, p).slack;
            // Allow the ε tolerance plus 5ps numeric headroom.
            if mgba > pba + config.epsilon * pba.abs() + 5.0 {
                optimistic += 1;
            }
            checked += 1;
        }
        assert!(
            (optimistic as f64) < 0.05 * checked as f64 + 2.0,
            "{optimistic}/{checked} paths ended up optimistic vs PBA"
        );
    }

    #[test]
    fn no_violations_returns_identity() {
        let n = GeneratorConfig::small(115).generate();
        let mut sta = Sta::new(n, Sdc::with_period(1_000_000.0), DerateSet::standard()).unwrap();
        let report = run_mgba(&mut sta, &MgbaConfig::default(), Solver::ScgRs);
        assert_eq!(report.num_paths, 0);
        assert!(report.weights.iter().all(|w| *w == 0.0));
    }

    /// First combinational gate on a cached path that the library can
    /// upsize, with its upsized variant.
    fn resizable_on_paths(sta: &Sta, paths: &[Path]) -> (CellId, netlist::LibCellId) {
        paths
            .iter()
            .flat_map(|p| p.cells.iter())
            .find_map(|&c| {
                let cell = sta.netlist().cell(c);
                if cell.role == netlist::CellRole::Combinational {
                    sta.netlist()
                        .library()
                        .upsized(cell.lib_cell)
                        .map(|up| (c, up))
                } else {
                    None
                }
            })
            .expect("a resizable fitted gate exists")
    }

    #[test]
    fn warm_recalibration_tracks_a_cold_refit() {
        let mut sta = tight_engine(117);
        let config = MgbaConfig::default();
        let (report, cache) = run_mgba_cached(&mut sta, &config, Solver::Cgnr);
        assert!(report.num_paths > 0);
        let mut cache = cache.expect("violating design yields a cache");

        let (victim, up) = resizable_on_paths(&sta, &cache.paths);
        sta.resize_cell(victim, up).unwrap();
        let dirty = sta.last_touched().to_vec();
        assert!(!dirty.is_empty());

        let re = recalibrate_warm(&mut sta, &config, Solver::Cgnr, &mut cache, &dirty);
        assert!(re.dirty_rows > 0, "a fitted gate was resized");
        assert!(re.dirty_rows <= re.total_rows);
        assert_eq!(re.total_rows, report.num_paths);
        assert!(
            re.mse_after <= re.mse_before + 1e-12,
            "refit must not regress: {} -> {}",
            re.mse_before,
            re.mse_after
        );
        // Weights are reinstalled on the engine.
        let installed = (0..sta.netlist().num_cells())
            .filter(|&i| sta.gate_weight(CellId::new(i)) != 0.0)
            .count();
        assert!(installed > 0);

        // Cold oracle: rebuild the problem from scratch over the SAME
        // paths on the edited design and solve from zero. The objective
        // is convex, so warm and cold land on the same optimum.
        sta.clear_weights();
        let fresh = FitProblem::build_par(
            &sta,
            &cache.paths,
            config.epsilon,
            config.penalty,
            config.parallelism(),
        );
        let (cold, _) = solve_with_fallback(Solver::Cgnr, &fresh, &config);
        let warm_obj = fresh.objective(&cache.x);
        let slack = cold.objective.abs() * 0.05 + 1e-6;
        assert!(
            (warm_obj - cold.objective).abs() <= slack,
            "warm {} vs cold {} objective",
            warm_obj,
            cold.objective
        );
    }

    #[test]
    fn recalibrate_with_no_dirty_cells_patches_nothing() {
        let mut sta = tight_engine(118);
        let config = MgbaConfig::default();
        let (_, cache) = run_mgba_cached(&mut sta, &config, Solver::Cgnr);
        let mut cache = cache.expect("violating design yields a cache");
        let x_before = cache.x.clone();
        let re = recalibrate_warm(&mut sta, &config, Solver::Cgnr, &mut cache, &[]);
        assert_eq!(re.dirty_rows, 0);
        assert!(re.mse_after <= re.mse_before + 1e-12);
        // The problem is unchanged and the warm start already optimal, so
        // the refit stays at (or within tolerance of) the same solution.
        let drift: f64 = cache
            .x
            .iter()
            .zip(&x_before)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(drift <= 1e-6, "no-op refit drifted x by {drift}");
    }

    #[test]
    fn cache_is_absent_when_nothing_was_calibrated() {
        let n = GeneratorConfig::small(119).generate();
        let mut sta = Sta::new(n, Sdc::with_period(1_000_000.0), DerateSet::standard()).unwrap();
        let config = MgbaConfig {
            only_violating: true,
            ..MgbaConfig::default()
        };
        let (report, cache) = run_mgba_cached(&mut sta, &config, Solver::Cgnr);
        assert_eq!(report.num_paths, 0);
        assert!(cache.is_none());
    }

    #[test]
    fn warm_refit_is_identical_across_thread_counts() {
        // Calibrate, resize, and warm-refit the same seeded design under
        // two pool widths; every kernel in the chain (batch retimers,
        // fit assembly, solver reductions) is bit-identical at any
        // width, so x* and the installed weights must match exactly.
        let run = |threads: usize| {
            let mut sta = tight_engine(120);
            let config = MgbaConfig {
                threads,
                ..MgbaConfig::default()
            };
            let (_, cache) = run_mgba_cached(&mut sta, &config, Solver::ScgRs);
            let mut cache = cache.expect("violating design yields a cache");
            let (victim, up) = resizable_on_paths(&sta, &cache.paths);
            sta.resize_cell(victim, up).unwrap();
            let dirty = sta.last_touched().to_vec();
            let re = recalibrate_warm(&mut sta, &config, Solver::ScgRs, &mut cache, &dirty);
            assert!(re.dirty_rows > 0);
            let x_bits: Vec<u64> = cache.x.iter().map(|v| v.to_bits()).collect();
            let w_bits: Vec<u64> = (0..sta.netlist().num_cells())
                .map(|i| sta.gate_weight(CellId::new(i)).to_bits())
                .collect();
            (x_bits, w_bits)
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn warm_and_cold_reach_the_same_optimum_across_seeds() {
        // The fit objective is convex, so a warm start changes the route
        // to the optimum, never the optimum itself. Check the invariant
        // across several independent designs.
        for seed in [121u64, 122, 123] {
            let mut sta = tight_engine(seed);
            let config = MgbaConfig::default();
            let (_, cache) = run_mgba_cached(&mut sta, &config, Solver::Cgnr);
            let mut cache = cache.expect("violating design yields a cache");
            let (victim, up) = resizable_on_paths(&sta, &cache.paths);
            sta.resize_cell(victim, up).unwrap();
            let dirty = sta.last_touched().to_vec();
            recalibrate_warm(&mut sta, &config, Solver::Cgnr, &mut cache, &dirty);

            sta.clear_weights();
            let fresh = FitProblem::build_par(
                &sta,
                &cache.paths,
                config.epsilon,
                config.penalty,
                config.parallelism(),
            );
            let (cold, _) = solve_with_fallback(Solver::Cgnr, &fresh, &config);
            let warm_obj = fresh.objective(&cache.x);
            let slack = cold.objective.abs() * 0.05 + 1e-6;
            assert!(
                (warm_obj - cold.objective).abs() <= slack,
                "seed {seed}: warm {warm_obj} vs cold {} objective",
                cold.objective
            );
        }
    }

    #[test]
    fn report_fields_are_consistent() {
        let mut sta = tight_engine(116);
        let report = run_mgba(&mut sta, &MgbaConfig::default(), Solver::Scg);
        assert_eq!(report.pass_before.total, report.num_paths);
        assert_eq!(report.pass_after.total, report.num_paths);
        assert!(report.coverage > 0.0 && report.coverage <= 1.0);
        assert_eq!(report.weights.len(), sta.netlist().num_cells());
        assert_eq!(report.solver_name, "SCG + w/o RS");
    }
}
