//! Persisting fitted weights.
//!
//! A fitted correction is only useful if it can outlive the process that
//! computed it: the optimization flow fits once and many later tool
//! invocations (reports, what-if sizing, SDF export) want the corrected
//! view. This module serializes weights as a line-oriented sidecar file
//! keyed by *cell name* (robust to cell-id renumbering across
//! sessions):
//!
//! ```text
//! # mgba weights v1 design=D3
//! g_0_2_14 -0.03125
//! g_1_0_7 -0.00871
//! ```
//!
//! Zero weights are omitted (the x* sparsity of Fig. 3 keeps these files
//! small).

use crate::error::MgbaError;
use netlist::Netlist;
use std::error::Error;
use std::fmt;
use std::path::Path;

/// Errors from [`parse_weights`] / [`apply_weights`].
#[derive(Debug, Clone, PartialEq)]
pub enum WeightsError {
    /// A line was not `name value`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description.
        reason: String,
    },
    /// A referenced cell does not exist in the netlist.
    UnknownCell(String),
}

impl fmt::Display for WeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightsError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            WeightsError::UnknownCell(c) => write!(f, "unknown cell `{c}`"),
        }
    }
}

impl Error for WeightsError {}

/// Serializes per-cell weights (indexed by [`netlist::CellId`]) as the
/// sidecar format. Cells with exactly-zero weight are omitted.
pub fn write_weights(netlist: &Netlist, weights: &[f64]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# mgba weights v1 design={}", netlist.name());
    for (id, cell) in netlist.cells() {
        let w = weights.get(id.index()).copied().unwrap_or(0.0);
        if w != 0.0 {
            let _ = writeln!(out, "{} {}", cell.name, w);
        }
    }
    out
}

/// Parses the sidecar format into `(cell name, weight)` pairs.
///
/// # Errors
///
/// Returns [`WeightsError::Malformed`] on bad lines.
pub fn parse_weights(text: &str) -> Result<Vec<(String, f64)>, WeightsError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.split_once(char::is_whitespace) else {
            return Err(WeightsError::Malformed {
                line: i + 1,
                reason: format!("expected `name value`, got `{line}`"),
            });
        };
        let w: f64 = value.trim().parse().map_err(|_| WeightsError::Malformed {
            line: i + 1,
            reason: format!("bad weight `{}`", value.trim()),
        })?;
        out.push((name.to_owned(), w));
    }
    Ok(out)
}

/// Resolves parsed weights against `netlist` into a dense per-cell
/// vector suitable for [`sta::Sta::set_weights`].
///
/// # Errors
///
/// Returns [`WeightsError::UnknownCell`] for names not in the netlist.
pub fn apply_weights(netlist: &Netlist, pairs: &[(String, f64)]) -> Result<Vec<f64>, WeightsError> {
    let mut weights = vec![0.0; netlist.num_cells()];
    for (name, w) in pairs {
        let id = netlist
            .find_cell(name)
            .ok_or_else(|| WeightsError::UnknownCell(name.clone()))?;
        weights[id.index()] = *w;
    }
    Ok(weights)
}

/// Writes `text` to `path` atomically: the content lands in a `.tmp`
/// sibling first, is fsynced, and only then renamed over the target.
/// A crash (or the `weights.write` failpoint) mid-write leaves the
/// previous file intact — readers never observe a torn sidecar.
///
/// # Errors
///
/// Returns [`MgbaError::Io`] when any step fails; the partially written
/// temp file is removed on the error path.
pub fn atomic_write_text(path: impl AsRef<Path>, text: &str) -> Result<(), MgbaError> {
    use std::io::Write as _;
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let write_all = |tmp: &Path| -> std::io::Result<()> {
        let mut f = std::fs::File::create(tmp)?;
        f.write_all(text.as_bytes())?;
        if faultinject::fire("weights.write").is_some() {
            // Simulated torn write: half the payload made it to disk and
            // the process "died" before the rename. The target file must
            // be untouched.
            f.set_len((text.len() / 2) as u64)?;
            return Err(std::io::Error::other(
                "failpoint `weights.write`: injected crash before rename",
            ));
        }
        f.sync_all()?;
        Ok(())
    };
    if let Err(e) = write_all(&tmp) {
        let _ = std::fs::remove_file(&tmp);
        return Err(MgbaError::io(path, e));
    }
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        MgbaError::io(path, e)
    })
}

/// Writes the weights sidecar for `netlist` to `path` (atomically, via
/// [`atomic_write_text`]).
///
/// # Errors
///
/// Returns [`MgbaError::Io`] when the file cannot be written.
pub fn write_weights_file(
    path: impl AsRef<Path>,
    netlist: &Netlist,
    weights: &[f64],
) -> Result<(), MgbaError> {
    atomic_write_text(path, &write_weights(netlist, weights))
}

/// Reads a weights sidecar from `path` and resolves it against `netlist`
/// into a dense per-cell vector.
///
/// This is the daemon-safe loading path: a missing file surfaces as
/// [`MgbaError::Io`] and a malformed or mismatched file as
/// [`MgbaError::Parse`] — never a panic.
///
/// # Errors
///
/// Returns [`MgbaError::Io`] or [`MgbaError::Parse`] as above.
pub fn read_weights_file(path: impl AsRef<Path>, netlist: &Netlist) -> Result<Vec<f64>, MgbaError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| MgbaError::io(path, e))?;
    let pairs = parse_weights(&text)?;
    Ok(apply_weights(netlist, &pairs)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_mgba, MgbaConfig, Solver};
    use netlist::GeneratorConfig;
    use sta::{DerateSet, Sdc, Sta};

    fn fitted_engine() -> (Sta, Vec<f64>) {
        let n = GeneratorConfig::small(1201).generate();
        let probe = Sta::new(n.clone(), Sdc::with_period(10_000.0), DerateSet::standard()).unwrap();
        let period = 10_000.0 - probe.wns() - 300.0;
        let mut sta = Sta::new(n, Sdc::with_period(period), DerateSet::standard()).unwrap();
        let report = run_mgba(&mut sta, &MgbaConfig::default(), Solver::Cgnr);
        (sta, report.weights)
    }

    #[test]
    fn file_round_trip_is_bit_identical() {
        let dir = std::env::temp_dir().join("mgba_weights_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.weights");
        let (sta, weights) = fitted_engine();
        write_weights_file(&path, sta.netlist(), &weights).unwrap();
        let restored = read_weights_file(&path, sta.netlist()).unwrap();
        // Bit-identical, not approximately equal: the sidecar must
        // reproduce the fitted engine exactly on warm restart.
        assert_eq!(weights.len(), restored.len());
        for (a, b) in weights.iter().zip(&restored) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A second write of the restored vector is byte-identical too.
        let path2 = dir.join("w2.weights");
        write_weights_file(&path2, sta.netlist(), &restored).unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            std::fs::read_to_string(&path2).unwrap()
        );
    }

    #[test]
    fn missing_weights_file_is_io_error() {
        let (sta, _) = fitted_engine();
        let err = read_weights_file("/nonexistent/x.weights", sta.netlist()).unwrap_err();
        assert!(matches!(err, MgbaError::Io { .. }), "{err}");
    }

    #[test]
    fn malformed_weights_file_is_parse_error_not_panic() {
        let dir = std::env::temp_dir().join("mgba_weights_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let (sta, _) = fitted_engine();
        for (name, content) in [
            ("nopair.weights", "just_a_name\n"),
            ("badnum.weights", "g_0_0_0 not_a_number\n"),
            ("ghost.weights", "no_such_cell -0.5\n"),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, content).unwrap();
            let err = read_weights_file(&path, sta.netlist()).unwrap_err();
            assert!(matches!(err, MgbaError::Parse(_)), "{name}: {err}");
        }
    }

    #[test]
    fn round_trip_preserves_every_weight() {
        let (sta, weights) = fitted_engine();
        let text = write_weights(sta.netlist(), &weights);
        let pairs = parse_weights(&text).unwrap();
        let restored = apply_weights(sta.netlist(), &pairs).unwrap();
        for (i, (a, b)) in weights.iter().zip(&restored).enumerate() {
            assert_eq!(a, b, "weight {i}");
        }
    }

    #[test]
    fn restored_weights_reproduce_corrected_timing() {
        let (sta, weights) = fitted_engine();
        let text = write_weights(sta.netlist(), &weights);
        // A fresh engine + restored weights = the same corrected WNS.
        let mut fresh = Sta::new(
            sta.netlist().clone(),
            sta.sdc().clone(),
            sta.derates().clone(),
        )
        .unwrap();
        let pairs = parse_weights(&text).unwrap();
        let restored = apply_weights(fresh.netlist(), &pairs).unwrap();
        fresh.set_weights(&restored);
        assert!((fresh.wns() - sta.wns()).abs() < 1e-9);
        assert!((fresh.tns() - sta.tns()).abs() < 1e-9);
    }

    #[test]
    fn zero_weights_are_omitted() {
        let (sta, weights) = fitted_engine();
        let text = write_weights(sta.netlist(), &weights);
        let nonzero = weights.iter().filter(|w| **w != 0.0).count();
        // header + one line per nonzero weight
        assert_eq!(text.lines().count(), nonzero + 1);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(matches!(
            parse_weights("just_a_name\n"),
            Err(WeightsError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            parse_weights("cell not_a_number\n"),
            Err(WeightsError::Malformed { .. })
        ));
    }

    #[test]
    fn unknown_cells_are_rejected() {
        let (sta, _) = fitted_engine();
        let err = apply_weights(sta.netlist(), &[("ghost".to_owned(), -0.1)]).unwrap_err();
        assert_eq!(err, WeightsError::UnknownCell("ghost".to_owned()));
    }

    #[test]
    fn atomic_write_replaces_existing_content() {
        let dir = std::env::temp_dir().join("mgba_weights_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.weights");
        atomic_write_text(&path, "old content\n").unwrap();
        atomic_write_text(&path, "new content\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new content\n");
        // No temp file left behind.
        assert!(!dir.join("atomic.weights.tmp").exists());
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn torn_write_failpoint_leaves_previous_file_intact() {
        let dir = std::env::temp_dir().join("mgba_weights_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.weights");
        atomic_write_text(&path, "good content\n").unwrap();

        let _fp = faultinject::scoped("weights.write=error");
        let err = atomic_write_text(&path, "replacement that dies mid-write\n").unwrap_err();
        assert!(matches!(err, MgbaError::Io { .. }), "{err}");
        assert!(err.to_string().contains("weights.write"), "{err}");
        // The target still holds the previous generation, bit for bit,
        // and the torn temp file was cleaned up.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "good content\n");
        assert!(!dir.join("torn.weights.tmp").exists());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let pairs = parse_weights("# header\n\na -0.5\n").unwrap();
        assert_eq!(pairs, vec![("a".to_owned(), -0.5)]);
    }
}
