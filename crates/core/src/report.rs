//! QoR accuracy dashboard: how much pessimism mGBA removed, and how
//! close it came to the no-optimism constraint — per endpoint, per path
//! depth, and globally, as one machine-readable JSON document.
//!
//! [`MgbaReport`] answers "did the fit converge and improve MSE";
//! this report answers the QoR questions a timing signoff review asks:
//!
//! - **Accuracy**: mean/max `|s − s_pba|` for original GBA and for
//!   mGBA, overall and broken down by endpoint and by path depth
//!   (deeper paths accumulate more derate pessimism, so depth is where
//!   the paper's win should concentrate).
//! - **Divergence**: WNS/TNS over the fitted path set under each of the
//!   three views (GBA / golden PBA / mGBA) — how far apart the
//!   summaries a designer actually reads are.
//! - **Constraint**: the worst signed margin of
//!   `s_mgba − (s_pba + ε·|s_pba|)` (Eq. 7's tolerance); positive means
//!   a path ended up optimistic beyond the allowed band.
//! - **Sparsity**: how many cells carry a non-zero weight — the
//!   dashboard's proxy for how local the correction is.
//!
//! # JSON schema (version 1)
//!
//! ```text
//! {
//!   "version": 1, "design": str, "solver": str,
//!   "fallback_stage": str, "paths": u64, "epsilon": f64,
//!   "mse": {"before": f64, "after": f64},
//!   "abs_err_before": {"mean": f64, "max": f64},
//!   "abs_err_after":  {"mean": f64, "max": f64},
//!   "wns": {"gba": f64, "pba": f64, "mgba": f64},
//!   "tns": {"gba": f64, "pba": f64, "mgba": f64},
//!   "constraint": {"worst_margin": f64, "optimistic_paths": u64},
//!   "weights": {"cells": u64, "nonzero": u64, "sparsity_pct": f64},
//!   "endpoints": [{"endpoint": str, "paths": u64,
//!                  "gba": f64, "pba": f64, "mgba": f64,
//!                  "mean_abs_err_before": f64, "mean_abs_err_after": f64,
//!                  "max_abs_err_after": f64}],
//!   "stages": [{"gates": u64, "paths": u64,
//!               "mean_abs_err_before": f64, "mean_abs_err_after": f64,
//!               "max_abs_err_after": f64}]
//! }
//! ```
//!
//! Empty selections (nothing violating) produce a structurally complete
//! document with zero paths and empty breakdown arrays. Non-finite
//! floats serialize as `null`. Ordering is deterministic: endpoints
//! worst-PBA-slack first (name-tiebroken), stages by ascending depth.

use crate::{MgbaConfig, MgbaReport, PathSample};
use obs::json::JsonWriter;
use sta::Sta;
use std::collections::BTreeMap;

/// Schema version of [`AccuracyReport::to_json`].
pub const ACCURACY_SCHEMA_VERSION: u64 = 1;

/// Accuracy rollup for one endpoint's fitted paths.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointAccuracy {
    /// Endpoint cell name.
    pub endpoint: String,
    /// Fitted paths terminating here.
    pub paths: usize,
    /// Worst original GBA slack among them.
    pub gba: f64,
    /// Worst golden PBA slack among them.
    pub pba: f64,
    /// Worst corrected mGBA slack among them.
    pub mgba: f64,
    /// Mean `|s_gba − s_pba|` over this endpoint's paths.
    pub mean_abs_err_before: f64,
    /// Mean `|s_mgba − s_pba|` over this endpoint's paths.
    pub mean_abs_err_after: f64,
    /// Max `|s_mgba − s_pba|` over this endpoint's paths.
    pub max_abs_err_after: f64,
}

/// Accuracy rollup for every fitted path of one depth (gate count).
#[derive(Debug, Clone, PartialEq)]
pub struct StageAccuracy {
    /// Gates (stages) on each path in this group.
    pub gates: usize,
    /// Paths of this depth.
    pub paths: usize,
    /// Mean `|s_gba − s_pba|`.
    pub mean_abs_err_before: f64,
    /// Mean `|s_mgba − s_pba|`.
    pub mean_abs_err_after: f64,
    /// Max `|s_mgba − s_pba|`.
    pub max_abs_err_after: f64,
}

/// The full dashboard; see the module docs for the field semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyReport {
    /// Design name.
    pub design: String,
    /// Solver used for the fit.
    pub solver: String,
    /// Degradation-ladder rung that produced the weights
    /// ([`crate::FallbackStage::name`]; `"primary"` on a healthy run,
    /// `"identity"` when the calibration degraded to raw GBA).
    pub fallback_stage: String,
    /// Fitted paths.
    pub paths: usize,
    /// Eq. 7 relative tolerance the fit was run with.
    pub epsilon: f64,
    /// Modelling MSE before (original GBA vs PBA).
    pub mse_before: f64,
    /// Modelling MSE after (mGBA vs PBA).
    pub mse_after: f64,
    /// Mean `|s_gba − s_pba|` over all fitted paths.
    pub mean_abs_err_before: f64,
    /// Max `|s_gba − s_pba|`.
    pub max_abs_err_before: f64,
    /// Mean `|s_mgba − s_pba|`.
    pub mean_abs_err_after: f64,
    /// Max `|s_mgba − s_pba|`.
    pub max_abs_err_after: f64,
    /// WNS over the fitted set: (GBA, PBA, mGBA).
    pub wns: (f64, f64, f64),
    /// TNS over the fitted set (per-endpoint worst slacks, negatives
    /// summed): (GBA, PBA, mGBA).
    pub tns: (f64, f64, f64),
    /// Worst signed margin `s_mgba − (s_pba + ε·|s_pba|)`; positive
    /// means at least one path is optimistic beyond the tolerance.
    pub worst_constraint_margin: f64,
    /// Paths whose margin is positive.
    pub optimistic_paths: usize,
    /// Total netlist cells (weight vector length).
    pub cells: usize,
    /// Cells carrying a non-zero weight.
    pub nonzero_weights: usize,
    /// Per-endpoint breakdown, worst PBA slack first.
    pub endpoints: Vec<EndpointAccuracy>,
    /// Per-depth breakdown, ascending gate count.
    pub stages: Vec<StageAccuracy>,
}

fn mean(xs: impl Iterator<Item = f64>, n: usize) -> f64 {
    if n == 0 {
        0.0
    } else {
        xs.sum::<f64>() / n as f64
    }
}

fn fold_min(xs: impl Iterator<Item = f64>) -> f64 {
    xs.fold(f64::INFINITY, f64::min)
}

impl AccuracyReport {
    /// Percentage of cells with a zero weight (100 = no correction
    /// anywhere, low = corrections smeared across the design).
    pub fn sparsity_pct(&self) -> f64 {
        if self.cells == 0 {
            100.0
        } else {
            100.0 * (self.cells - self.nonzero_weights) as f64 / self.cells as f64
        }
    }

    /// Builds the dashboard from the per-path samples `run_mgba`
    /// already measured.
    pub(crate) fn compute(
        sta: &Sta,
        report: &MgbaReport,
        config: &MgbaConfig,
        samples: &[PathSample],
    ) -> Self {
        let n = samples.len();
        let err_b = |s: &PathSample| (s.gba - s.pba).abs();
        let err_a = |s: &PathSample| (s.mgba - s.pba).abs();
        let margin = |s: &PathSample| s.mgba - (s.pba + config.epsilon * s.pba.abs());

        // Per-endpoint rollup (worst slack per view + error stats).
        let mut by_endpoint: BTreeMap<String, Vec<&PathSample>> = BTreeMap::new();
        for s in samples {
            let name = sta.netlist().cell(s.endpoint).name.clone();
            by_endpoint.entry(name).or_default().push(s);
        }
        let mut endpoints: Vec<EndpointAccuracy> = by_endpoint
            .into_iter()
            .map(|(endpoint, ps)| {
                let k = ps.len();
                EndpointAccuracy {
                    endpoint,
                    paths: k,
                    gba: fold_min(ps.iter().map(|s| s.gba)),
                    pba: fold_min(ps.iter().map(|s| s.pba)),
                    mgba: fold_min(ps.iter().map(|s| s.mgba)),
                    mean_abs_err_before: mean(ps.iter().map(|s| err_b(s)), k),
                    mean_abs_err_after: mean(ps.iter().map(|s| err_a(s)), k),
                    max_abs_err_after: ps.iter().map(|s| err_a(s)).fold(0.0, f64::max),
                }
            })
            .collect();
        endpoints.sort_by(|a, b| a.pba.total_cmp(&b.pba).then(a.endpoint.cmp(&b.endpoint)));

        // WNS/TNS per view from the endpoint rollup (TNS sums each
        // endpoint's worst slack when negative, the usual convention).
        let wns = (
            fold_min(endpoints.iter().map(|e| e.gba)).min(0.0),
            fold_min(endpoints.iter().map(|e| e.pba)).min(0.0),
            fold_min(endpoints.iter().map(|e| e.mgba)).min(0.0),
        );
        let tns_of = |slack: fn(&EndpointAccuracy) -> f64, es: &[EndpointAccuracy]| {
            es.iter().map(slack).filter(|s| *s < 0.0).sum::<f64>()
        };
        let tns = (
            tns_of(|e| e.gba, &endpoints),
            tns_of(|e| e.pba, &endpoints),
            tns_of(|e| e.mgba, &endpoints),
        );

        // Per-depth rollup.
        let mut by_depth: BTreeMap<usize, Vec<&PathSample>> = BTreeMap::new();
        for s in samples {
            by_depth.entry(s.gates).or_default().push(s);
        }
        let stages: Vec<StageAccuracy> = by_depth
            .into_iter()
            .map(|(gates, ps)| {
                let k = ps.len();
                StageAccuracy {
                    gates,
                    paths: k,
                    mean_abs_err_before: mean(ps.iter().map(|s| err_b(s)), k),
                    mean_abs_err_after: mean(ps.iter().map(|s| err_a(s)), k),
                    max_abs_err_after: ps.iter().map(|s| err_a(s)).fold(0.0, f64::max),
                }
            })
            .collect();

        let nonzero_weights = report.weights.iter().filter(|w| **w != 0.0).count();
        Self {
            design: report.design.clone(),
            solver: report.solver_name.clone(),
            fallback_stage: report.fallback.name().to_owned(),
            paths: n,
            epsilon: config.epsilon,
            mse_before: report.mse_before,
            mse_after: report.mse_after,
            mean_abs_err_before: mean(samples.iter().map(err_b), n),
            max_abs_err_before: samples.iter().map(err_b).fold(0.0, f64::max),
            mean_abs_err_after: mean(samples.iter().map(err_a), n),
            max_abs_err_after: samples.iter().map(err_a).fold(0.0, f64::max),
            wns,
            tns,
            worst_constraint_margin: samples.iter().map(margin).fold(f64::NEG_INFINITY, f64::max),
            optimistic_paths: samples.iter().filter(|s| margin(s) > 0.0).count(),
            cells: report.weights.len(),
            nonzero_weights,
            endpoints,
            stages,
        }
    }

    /// Renders the version-1 JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("version");
        w.u64(ACCURACY_SCHEMA_VERSION);
        w.key("design");
        w.str(&self.design);
        w.key("solver");
        w.str(&self.solver);
        w.key("fallback_stage");
        w.str(&self.fallback_stage);
        w.key("paths");
        w.u64(self.paths as u64);
        w.key("epsilon");
        w.f64(self.epsilon);
        w.key("mse");
        w.begin_obj();
        w.key("before");
        w.f64(self.mse_before);
        w.key("after");
        w.f64(self.mse_after);
        w.end_obj();
        let err_pair = |w: &mut JsonWriter, mean: f64, max: f64| {
            w.begin_obj();
            w.key("mean");
            w.f64(mean);
            w.key("max");
            w.f64(max);
            w.end_obj();
        };
        w.key("abs_err_before");
        err_pair(&mut w, self.mean_abs_err_before, self.max_abs_err_before);
        w.key("abs_err_after");
        err_pair(&mut w, self.mean_abs_err_after, self.max_abs_err_after);
        let triple = |w: &mut JsonWriter, (gba, pba, mgba): (f64, f64, f64)| {
            w.begin_obj();
            w.key("gba");
            w.f64(gba);
            w.key("pba");
            w.f64(pba);
            w.key("mgba");
            w.f64(mgba);
            w.end_obj();
        };
        w.key("wns");
        triple(&mut w, self.wns);
        w.key("tns");
        triple(&mut w, self.tns);
        w.key("constraint");
        w.begin_obj();
        w.key("worst_margin");
        w.f64(self.worst_constraint_margin);
        w.key("optimistic_paths");
        w.u64(self.optimistic_paths as u64);
        w.end_obj();
        w.key("weights");
        w.begin_obj();
        w.key("cells");
        w.u64(self.cells as u64);
        w.key("nonzero");
        w.u64(self.nonzero_weights as u64);
        w.key("sparsity_pct");
        w.f64(self.sparsity_pct());
        w.end_obj();
        w.key("endpoints");
        w.begin_arr();
        for e in &self.endpoints {
            w.begin_obj();
            w.key("endpoint");
            w.str(&e.endpoint);
            w.key("paths");
            w.u64(e.paths as u64);
            w.key("gba");
            w.f64(e.gba);
            w.key("pba");
            w.f64(e.pba);
            w.key("mgba");
            w.f64(e.mgba);
            w.key("mean_abs_err_before");
            w.f64(e.mean_abs_err_before);
            w.key("mean_abs_err_after");
            w.f64(e.mean_abs_err_after);
            w.key("max_abs_err_after");
            w.f64(e.max_abs_err_after);
            w.end_obj();
        }
        w.end_arr();
        w.key("stages");
        w.begin_arr();
        for s in &self.stages {
            w.begin_obj();
            w.key("gates");
            w.u64(s.gates as u64);
            w.key("paths");
            w.u64(s.paths as u64);
            w.key("mean_abs_err_before");
            w.f64(s.mean_abs_err_before);
            w.key("mean_abs_err_after");
            w.f64(s.mean_abs_err_after);
            w.key("max_abs_err_after");
            w.f64(s.max_abs_err_after);
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_mgba, run_mgba_with_accuracy, Solver};
    use netlist::GeneratorConfig;
    use sta::{DerateSet, Sdc};

    fn tight_engine(seed: u64) -> Sta {
        let n = GeneratorConfig::small(seed).generate();
        let probe = Sta::new(n.clone(), Sdc::with_period(10_000.0), DerateSet::standard()).unwrap();
        let max_arrival = probe
            .netlist()
            .endpoints()
            .iter()
            .map(|&e| probe.endpoint_arrival(e))
            .filter(|a| a.is_finite())
            .fold(0.0, f64::max);
        let period = 10_000.0 - probe.wns() - 0.15 * max_arrival;
        Sta::new(n, Sdc::with_period(period), DerateSet::standard()).unwrap()
    }

    #[test]
    fn dashboard_reflects_the_fit() {
        let mut sta = tight_engine(211);
        let (report, acc) = run_mgba_with_accuracy(&mut sta, &MgbaConfig::default(), Solver::ScgRs);
        assert!(acc.paths > 0);
        assert_eq!(acc.paths, report.num_paths);
        assert_eq!(acc.design, report.design);
        // The fit's whole point: corrected error below original error.
        assert!(acc.mean_abs_err_after < acc.mean_abs_err_before);
        // mGBA sits between pessimistic GBA and golden PBA on WNS.
        assert!(acc.wns.0 <= acc.wns.2 + 1e-9, "{:?}", acc.wns);
        assert!(acc.tns.0 <= acc.tns.2 + 1e-9, "{:?}", acc.tns);
        // Breakdowns cover every path exactly once.
        assert_eq!(
            acc.endpoints.iter().map(|e| e.paths).sum::<usize>(),
            acc.paths
        );
        assert_eq!(acc.stages.iter().map(|s| s.paths).sum::<usize>(), acc.paths);
        // Endpoints sorted worst PBA first; stages by ascending depth.
        assert!(acc.endpoints.windows(2).all(|w| w[0].pba <= w[1].pba));
        assert!(acc.stages.windows(2).all(|w| w[0].gates < w[1].gates));
        assert!(acc.nonzero_weights > 0 && acc.nonzero_weights <= acc.cells);
        assert!((0.0..=100.0).contains(&acc.sparsity_pct()));
    }

    #[test]
    fn with_accuracy_matches_plain_run() {
        // The accuracy variant must not perturb the fit itself.
        let mut a = tight_engine(212);
        let plain = run_mgba(&mut a, &MgbaConfig::default(), Solver::Cgnr);
        let mut b = tight_engine(212);
        let (with, _) = run_mgba_with_accuracy(&mut b, &MgbaConfig::default(), Solver::Cgnr);
        assert_eq!(plain.weights, with.weights);
        assert_eq!(plain.iterations, with.iterations);
        assert_eq!(plain.mse_after.to_bits(), with.mse_after.to_bits());
    }

    #[test]
    fn json_document_is_complete() {
        let mut sta = tight_engine(213);
        let (_, acc) = run_mgba_with_accuracy(&mut sta, &MgbaConfig::default(), Solver::Scg);
        let json = acc.to_json();
        assert!(json.starts_with("{\"version\":1,"));
        assert!(json.contains("\"fallback_stage\":\"primary\""), "{json}");
        for key in [
            "\"mse\":{",
            "\"abs_err_before\":{",
            "\"abs_err_after\":{",
            "\"wns\":{",
            "\"tns\":{",
            "\"constraint\":{",
            "\"weights\":{",
            "\"endpoints\":[",
            "\"stages\":[",
            "\"sparsity_pct\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_selection_yields_empty_dashboard() {
        let n = GeneratorConfig::small(214).generate();
        let mut sta = Sta::new(n, Sdc::with_period(1_000_000.0), DerateSet::standard()).unwrap();
        let (report, acc) = run_mgba_with_accuracy(&mut sta, &MgbaConfig::default(), Solver::ScgRs);
        assert_eq!(report.num_paths, 0);
        assert_eq!(acc.paths, 0);
        assert!(acc.endpoints.is_empty() && acc.stages.is_empty());
        assert_eq!(acc.optimistic_paths, 0);
        assert_eq!(acc.sparsity_pct(), 100.0);
        // Still a structurally complete document.
        let json = acc.to_json();
        assert!(json.contains("\"endpoints\":[]"));
        assert!(json.contains("\"stages\":[]"));
    }
}
