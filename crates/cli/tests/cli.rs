//! End-to-end tests of the `mgba-sta` binary: every subcommand driven
//! through a real process over real files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mgba-sta"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mgba_cli_test_{}_{name}", std::process::id()));
    p
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn generate_stats_report_pipeline() {
    let nl = tmp("pipe.nl");
    run_ok(bin().args(["generate", "small:33", "--out"]).arg(&nl));
    let stats = run_ok(bin().arg("stats").arg(&nl));
    assert!(stats.contains("design small_33"));
    assert!(stats.contains("drive mix"));
    let report = run_ok(bin().arg("report").arg(&nl).args(["--period", "1500"]));
    assert!(report.contains("WNS"));
    assert!(report.contains("slack distribution"));
    let _ = std::fs::remove_file(&nl);
}

#[test]
fn verilog_generation_parses_back() {
    let v = tmp("pipe.v");
    run_ok(
        bin()
            .args(["generate", "small:34", "--format", "verilog", "--out"])
            .arg(&v),
    );
    let text = std::fs::read_to_string(&v).expect("file written");
    assert!(text.starts_with("module"));
    // The binary auto-detects Verilog input.
    let stats = run_ok(bin().arg("stats").arg(&v));
    assert!(stats.contains("design small_34"));
    let _ = std::fs::remove_file(&v);
}

#[test]
fn fit_writes_and_report_reads_weights() {
    let nl = tmp("fit.nl");
    let weights = tmp("fit.weights");
    run_ok(bin().args(["generate", "small:35", "--out"]).arg(&nl));
    // A period tight enough to violate (probing would need the library;
    // small designs violate well below ~1000 ps).
    let fit_out = run_ok(
        bin()
            .arg("fit")
            .arg(&nl)
            .args(["--period", "900", "--solver", "cgnr", "--out"])
            .arg(&weights),
    );
    assert!(fit_out.contains("pass ratio"));
    let sidecar = std::fs::read_to_string(&weights).expect("sidecar written");
    assert!(sidecar.starts_with("# mgba weights v1"));
    let report = run_ok(
        bin()
            .arg("report")
            .arg(&nl)
            .args(["--period", "900", "--weights"])
            .arg(&weights),
    );
    assert!(report.contains("WNS"));
    let _ = std::fs::remove_file(&nl);
    let _ = std::fs::remove_file(&weights);
}

#[test]
fn sdf_export_is_well_formed() {
    let nl = tmp("sdf.nl");
    let sdf = tmp("out.sdf");
    run_ok(bin().args(["generate", "small:36", "--out"]).arg(&nl));
    run_ok(
        bin()
            .arg("sdf")
            .arg(&nl)
            .args(["--period", "1200", "--fit", "--out"])
            .arg(&sdf),
    );
    let text = std::fs::read_to_string(&sdf).expect("sdf written");
    assert!(text.starts_with("(DELAYFILE"));
    assert!(text.contains("IOPATH"));
    let _ = std::fs::remove_file(&nl);
    let _ = std::fs::remove_file(&sdf);
}

#[test]
fn corners_and_flow_and_holdfix_run() {
    let nl = tmp("flow.nl");
    run_ok(bin().args(["generate", "small:37", "--out"]).arg(&nl));
    let corners = run_ok(bin().arg("corners").arg(&nl).args(["--period", "1500"]));
    assert!(corners.contains("signoff:"));
    let flow = bin()
        .arg("flow")
        .arg(&nl)
        .args(["--period", "1200", "--timer", "mgba"])
        .output()
        .expect("runs");
    assert!(flow.status.success());
    assert!(String::from_utf8_lossy(&flow.stdout).contains("signoff PBA"));
    let hold = bin()
        .arg("holdfix")
        .arg(&nl)
        .args(["--period", "1500"])
        .output()
        .expect("runs");
    assert!(hold.status.success());
    assert!(String::from_utf8_lossy(&hold.stdout).contains("hold violations"));
    let _ = std::fs::remove_file(&nl);
}

#[test]
fn calibrate_profile_json_writes_span_tree() {
    // `calibrate` takes generator specs directly and auto-derives a
    // violating period; `--profile=json` drops the observability report
    // in results/ under the working directory.
    let dir = tmp("calibrate_profile");
    std::fs::create_dir_all(&dir).expect("workdir");
    let out = run_ok(
        bin()
            .current_dir(&dir)
            .args(["calibrate", "small:38", "--profile=json"]),
    );
    assert!(out.contains("pass ratio"));
    let profile = std::fs::read_to_string(dir.join("results/profile_calibrate.json"))
        .expect("profile written");
    assert!(profile.starts_with("{\"version\":2,"));
    // The span tree covers the whole pipeline and the solver telemetry
    // recorded Algorithm 1's rounds.
    for span in [
        "\"calibrate\"",
        "\"load\"",
        "\"sta_build\"",
        "\"mgba\"",
        "\"select\"",
        "\"build\"",
        "\"solve\"",
        "\"fold_back\"",
        "\"evaluate\"",
    ] {
        assert!(profile.contains(span), "missing span {span}");
    }
    assert!(profile.contains("\"SCG + RS\""));
    assert!(profile.contains("\"rounds\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn calibrate_trace_writes_chrome_trace() {
    use server::json::{parse, Value};

    let trace = tmp("calibrate_trace.json");
    run_ok(bin().args(["calibrate", "small:40", "--trace"]).arg(&trace));
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let Value::Arr(events) = parse(&text).expect("valid JSON") else {
        panic!("trace must be a JSON array");
    };
    assert!(!events.is_empty(), "calibrate must emit span events");
    // Every event is a B/E/X duration event; per tid, ts never goes
    // backwards; B and E counts balance.
    let mut last_ts: std::collections::BTreeMap<u64, f64> = Default::default();
    let (mut begins, mut ends) = (0u64, 0u64);
    for e in &events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph");
        assert!(matches!(ph, "B" | "E" | "X"), "bad phase {ph}");
        match ph {
            "B" => {
                begins += 1;
                assert!(e.get("name").and_then(Value::as_str).is_some());
            }
            "E" => ends += 1,
            _ => {}
        }
        let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
        let tid = e.get("tid").and_then(Value::as_u64).expect("tid");
        assert_eq!(e.get("pid").and_then(Value::as_u64), Some(1));
        let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
        assert!(ts >= *prev, "tid {tid} timestamp went backwards");
        *prev = ts;
    }
    assert_eq!(begins, ends, "B/E events must balance");
    // The pipeline's spans are on the timeline.
    for name in ["\"calibrate\"", "\"mgba\"", "\"solve\""] {
        assert!(text.contains(name), "missing {name}");
    }
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn calibrate_qor_writes_accuracy_dashboard() {
    use server::json::{parse, Value};

    let qor = tmp("calibrate_qor.json");
    run_ok(bin().args(["calibrate", "small:41", "--qor"]).arg(&qor));
    let text = std::fs::read_to_string(&qor).expect("dashboard written");
    let v = parse(&text).expect("valid JSON");
    assert_eq!(v.get("version").and_then(Value::as_u64), Some(1));
    assert!(v.get("paths").and_then(Value::as_u64).unwrap() > 0);
    let after = v.get("abs_err_after").unwrap();
    let before = v.get("abs_err_before").unwrap();
    assert!(
        after.get("mean").and_then(Value::as_f64).unwrap()
            < before.get("mean").and_then(Value::as_f64).unwrap(),
        "dashboard must show the pessimism reduction"
    );
    for key in ["wns", "tns", "constraint", "weights", "endpoints", "stages"] {
        assert!(v.get(key).is_some(), "missing {key}");
    }
    let _ = std::fs::remove_file(&qor);
}

#[test]
fn calibrate_profile_text_goes_to_stderr() {
    let nl = tmp("calib.nl");
    run_ok(bin().args(["generate", "small:39", "--out"]).arg(&nl));
    let out = bin()
        .arg("calibrate")
        .arg(&nl)
        .args(["--period", "900", "--profile"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("spans:"));
    assert!(err.contains("mgba"));
    // stdout stays a clean fit summary.
    assert!(String::from_utf8_lossy(&out.stdout).contains("pass ratio"));
    let _ = std::fs::remove_file(&nl);
}

#[test]
fn query_times_out_against_a_wedged_server() {
    use std::net::TcpListener;

    // A listener that accepts the connection and then never answers: the
    // client's read timeout must fire and surface as a typed timeout
    // error with a nonzero exit instead of hanging forever.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let wedged = std::thread::spawn(move || {
        let conn = listener.accept().ok();
        std::thread::sleep(std::time::Duration::from_millis(2_000));
        drop(conn);
    });
    let out = bin()
        .args(["query", "--connect", &addr, "--timeout-ms", "200", "ping"])
        .output()
        .expect("runs");
    assert!(!out.status.success(), "a wedged server must not exit 0");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("timed out after 200 ms"), "stderr: {err}");
    wedged.join().expect("listener thread");
}

#[test]
fn query_connect_failure_reports_after_retries() {
    // Nothing listens on this freshly-bound-then-dropped port; the
    // client should retry with backoff and then fail cleanly.
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let out = bin()
        .args([
            "query",
            "--connect",
            &addr,
            "--timeout-ms",
            "200",
            "--retries",
            "1",
            "--backoff-ms",
            "10",
            "ping",
        ])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("retry 1/1"), "stderr: {err}");
}

#[test]
fn bad_usage_fails_with_usage_text() {
    let out = bin().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.contains("usage:"));
    let out = bin()
        .args(["report", "/nonexistent.nl", "--period", "10"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
}
