//! `mgba-sta` — command-line front end for the mGBA framework.
//!
//! ```text
//! mgba-sta generate <D1..D10|small:SEED> [--format text|verilog] [--out FILE]
//! mgba-sta stats    <FILE>
//! mgba-sta report   <FILE> --period PS [--top N]
//! mgba-sta fit      <FILE> --period PS [--solver ...] [--out WEIGHTS]
//! mgba-sta flow     <FILE> --period PS [--timer gba|mgba]
//! mgba-sta holdfix  <FILE> --period PS [--guard PS]
//! mgba-sta corners  <FILE> --period PS
//! mgba-sta sdf      <FILE> --period PS [--fit] [--out FILE]
//! ```
//!
//! Every subcommand additionally accepts the global `--threads N` option
//! (default: the `MGBA_THREADS` environment variable, else all cores),
//! which pins the worker-thread count of the parallel PBA-retiming and
//! fitting kernels. Results are bit-identical for every thread count.
//!
//! Netlist files may be in the native text format (`.nl`) or the
//! structural-Verilog subset (`.v`), auto-detected by content.

use mgba::{run_mgba, MgbaConfig, Solver};
use netlist::{DesignSpec, GeneratorConfig, Netlist};
use optim::{run_flow, FlowConfig};
use sta::{DerateSet, Sdc, Sta};
use std::io::Write as _;
use std::process::ExitCode;

mod args;
use args::Args;

/// Writes to stdout, treating a broken pipe (e.g. `mgba-sta ... | head`)
/// as a clean exit instead of a panic.
fn emit(text: &str) -> Result<(), String> {
    match std::io::stdout().write_all(text.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
        Err(e) => Err(format!("writing stdout: {e}")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  mgba-sta generate <D1..D10|small:SEED> [--format text|verilog] [--out FILE]
  mgba-sta stats    <FILE>
  mgba-sta report   <FILE> --period PS [--top N] [--weights WEIGHTS]
  mgba-sta fit      <FILE> --period PS [--solver gd|scg|scgrs|cgnr] [--out WEIGHTS]
  mgba-sta flow     <FILE> --period PS [--timer gba|mgba]
  mgba-sta holdfix  <FILE> --period PS [--guard PS]
  mgba-sta corners  <FILE> --period PS
  mgba-sta sdf      <FILE> --period PS [--fit] [--out FILE]

global options:
  --threads N   worker threads for PBA retiming / fitting kernels
                (default: MGBA_THREADS env, else all cores; 1 = serial;
                results are identical for every value)";

fn run(argv: &[String]) -> Result<(), String> {
    let mut args = Args::new(argv);
    // Global flag, honored by every subcommand: pin the worker-thread
    // count for the parallel timing/fitting kernels.
    if let Some(t) = args.option("--threads")? {
        let threads: usize = t
            .parse()
            .map_err(|_| format!("bad --threads `{t}` (want a non-negative integer)"))?;
        parallel::set_global_threads(threads);
    }
    let command = args.positional("command")?;
    match command.as_str() {
        "generate" => cmd_generate(&mut args),
        "stats" => cmd_stats(&mut args),
        "report" => cmd_report(&mut args),
        "fit" => cmd_fit(&mut args),
        "flow" => cmd_flow(&mut args),
        "holdfix" => cmd_holdfix(&mut args),
        "corners" => cmd_corners(&mut args),
        "sdf" => cmd_sdf(&mut args),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn parse_design(spec: &str) -> Result<Netlist, String> {
    if let Some(seed) = spec.strip_prefix("small:") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("bad seed in `{spec}`"))?;
        return Ok(GeneratorConfig::small(seed).generate());
    }
    DesignSpec::all()
        .into_iter()
        .find(|d| d.to_string() == spec)
        .map(DesignSpec::generate)
        .ok_or_else(|| format!("unknown design `{spec}` (want D1..D10 or small:SEED)"))
}

fn load_netlist(path: &str) -> Result<Netlist, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if text.trim_start().starts_with("module") {
        netlist::parse_verilog(&text).map_err(|e| format!("parsing {path}: {e}"))
    } else {
        netlist::parse_netlist(&text).map_err(|e| format!("parsing {path}: {e}"))
    }
}

fn build_engine(netlist: Netlist, period: f64) -> Result<Sta, String> {
    Sta::new(netlist, Sdc::with_period(period), DerateSet::standard())
        .map_err(|e| format!("timing the design: {e}"))
}

fn cmd_generate(args: &mut Args) -> Result<(), String> {
    let spec = args.positional("design")?;
    let format = args.option("--format")?.unwrap_or_else(|| "text".into());
    let out = args.option("--out")?;
    args.finish()?;
    let netlist = parse_design(&spec)?;
    let text = match format.as_str() {
        "text" => netlist::write_netlist(&netlist),
        "verilog" => netlist::write_verilog(&netlist),
        other => return Err(format!("unknown format `{other}`")),
    };
    match out {
        Some(path) => {
            std::fs::write(&path, text).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "wrote {} ({} cells, {} nets)",
                path,
                netlist.num_cells(),
                netlist.num_nets()
            );
        }
        None => emit(&text)?,
    }
    Ok(())
}

fn cmd_stats(args: &mut Args) -> Result<(), String> {
    let file = args.positional("netlist file")?;
    args.finish()?;
    let netlist = load_netlist(&file)?;
    emit(&netlist::DesignStats::collect(&netlist).to_string())?;
    Ok(())
}

fn cmd_holdfix(args: &mut Args) -> Result<(), String> {
    let file = args.positional("netlist file")?;
    let period: f64 = args.required_option("--period")?;
    let guard: f64 = args.option("--guard")?.map_or(Ok(0.0), |g| {
        g.parse().map_err(|_| format!("bad --guard `{g}`"))
    })?;
    args.finish()?;
    let mut sta = build_engine(load_netlist(&file)?, period)?;
    let report = optim::fix_hold_violations(&mut sta, guard);
    println!(
        "hold violations {} -> {}, {} pad buffers inserted, {} skipped for setup",
        report.violations_before,
        report.violations_after,
        report.buffers_added,
        report.skipped_for_setup
    );
    Ok(())
}

fn cmd_corners(args: &mut Args) -> Result<(), String> {
    let file = args.positional("netlist file")?;
    let period: f64 = args.required_option("--period")?;
    args.finish()?;
    let netlist = load_netlist(&file)?;
    let mc = sta::MultiCornerSta::new(
        &netlist,
        &Sdc::with_period(period),
        sta::Corner::signoff_set(),
    )
    .map_err(|e| format!("timing the design: {e}"))?;
    emit(&mc.report())?;
    Ok(())
}

fn cmd_sdf(args: &mut Args) -> Result<(), String> {
    let file = args.positional("netlist file")?;
    let period: f64 = args.required_option("--period")?;
    let fit = args.flag("--fit");
    let out = args.option("--out")?;
    args.finish()?;
    let mut sta = build_engine(load_netlist(&file)?, period)?;
    if fit {
        let _ = run_mgba(&mut sta, &MgbaConfig::default(), Solver::ScgRs);
    }
    let sdf = sta::write_sdf(&sta);
    match out {
        Some(path) => std::fs::write(&path, sdf).map_err(|e| format!("writing {path}: {e}"))?,
        None => emit(&sdf)?,
    }
    Ok(())
}

fn cmd_report(args: &mut Args) -> Result<(), String> {
    let file = args.positional("netlist file")?;
    let period: f64 = args.required_option("--period")?;
    let top: usize = args.option("--top")?.map_or(Ok(10), |t| {
        t.parse().map_err(|_| format!("bad --top `{t}`"))
    })?;
    let weights_file = args.option("--weights")?;
    args.finish()?;
    let mut sta = build_engine(load_netlist(&file)?, period)?;
    if let Some(path) = weights_file {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
        let pairs = mgba::parse_weights(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        let weights = mgba::apply_weights(sta.netlist(), &pairs)
            .map_err(|e| format!("applying {path}: {e}"))?;
        sta.set_weights(&weights);
        eprintln!("applied {} weights from {path}", pairs.len());
    }
    emit(&sta::timing_report(&sta, top))?;
    Ok(())
}

fn parse_solver(name: &str) -> Result<Solver, String> {
    Ok(match name {
        "gd" => Solver::Gd,
        "scg" => Solver::Scg,
        "scgrs" => Solver::ScgRs,
        "cgnr" => Solver::Cgnr,
        other => return Err(format!("unknown solver `{other}`")),
    })
}

fn cmd_fit(args: &mut Args) -> Result<(), String> {
    let file = args.positional("netlist file")?;
    let period: f64 = args.required_option("--period")?;
    let solver = parse_solver(
        &args.option("--solver")?.unwrap_or_else(|| "scgrs".into()),
    )?;
    let out = args.option("--out")?;
    args.finish()?;
    let mut sta = build_engine(load_netlist(&file)?, period)?;
    let report = run_mgba(&mut sta, &MgbaConfig::default(), solver);
    if let Some(path) = &out {
        let text = mgba::write_weights(sta.netlist(), &report.weights);
        std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote weights sidecar {path}");
    }
    println!("design {}: {}", report.design, report.solver_name);
    println!(
        "  {} paths fitted over {} weighted cells ({:.1}% gate coverage)",
        report.num_paths,
        report.num_gates,
        100.0 * report.coverage
    );
    println!(
        "  solve: {} iterations, {} row gradients, {:.1} ms, converged = {}",
        report.iterations,
        report.rows_touched,
        report.solve_time.as_secs_f64() * 1e3,
        report.converged
    );
    println!(
        "  mse vs golden PBA: {:.3e} -> {:.3e}",
        report.mse_before, report.mse_after
    );
    println!(
        "  pass ratio: {:.2}% -> {:.2}%",
        report.pass_before.percent(),
        report.pass_after.percent()
    );
    println!(
        "  corrected timing: WNS {:.1} ps, TNS {:.1} ps, {} violating endpoints",
        sta.wns(),
        sta.tns(),
        sta.violating_endpoints().len()
    );
    Ok(())
}

fn cmd_flow(args: &mut Args) -> Result<(), String> {
    let file = args.positional("netlist file")?;
    let period: f64 = args.required_option("--period")?;
    let timer = args.option("--timer")?.unwrap_or_else(|| "gba".into());
    args.finish()?;
    let mut sta = build_engine(load_netlist(&file)?, period)?;
    let cfg = match timer.as_str() {
        "gba" => FlowConfig::gba(),
        "mgba" => FlowConfig::mgba(MgbaConfig::default(), Solver::ScgRs),
        other => return Err(format!("unknown timer `{other}`")),
    };
    let r = run_flow(&mut sta, &cfg);
    println!("design {} [{} timer]", r.design, r.timer);
    println!(
        "  {} passes: {} upsizes, {} buffers, {} recovery downsizes; closed = {}",
        r.passes, r.counts.upsizes, r.counts.buffers, r.counts.downsizes, r.closed
    );
    println!(
        "  runtime {:.0} ms (mGBA fitting {:.0} ms)",
        r.elapsed.as_secs_f64() * 1e3,
        r.mgba_time.as_secs_f64() * 1e3
    );
    println!(
        "  area {:.0} -> {:.0} um^2, leakage {:.0} -> {:.0} nW, buffers {} -> {}",
        r.qor_initial.area,
        r.qor_final.area,
        r.qor_initial.leakage,
        r.qor_final.leakage,
        r.qor_initial.buffers,
        r.qor_final.buffers
    );
    println!(
        "  signoff PBA: WNS {:.1} ps, TNS {:.1} ps, {} violating endpoints",
        r.qor_final_pba.wns, r.qor_final_pba.tns, r.qor_final_pba.violating_endpoints
    );
    Ok(())
}
