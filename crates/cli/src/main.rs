//! `mgba-sta` — command-line front end for the mGBA framework.
//!
//! ```text
//! mgba-sta generate  <D1..D10|small:SEED> [--format text|verilog|edif] [--out FILE]
//! mgba-sta import    --edif FILE [--format text|verilog] [--out FILE]
//! mgba-sta lint      <FILE> [--json]
//! mgba-sta stats     <FILE>
//! mgba-sta report    <FILE> --period PS [--top N]
//! mgba-sta fit       <FILE> --period PS [--solver ...] [--out WEIGHTS]
//! mgba-sta calibrate <D1..D10|small:SEED|FILE> [--period PS] [--solver ...] [--out WEIGHTS]
//! mgba-sta flow      <FILE> --period PS [--timer gba|mgba]
//! mgba-sta holdfix   <FILE> --period PS [--guard PS]
//! mgba-sta corners   <FILE> --period PS
//! mgba-sta sdf       <FILE> --period PS [--fit] [--out FILE]
//! mgba-sta serve     [--listen ADDR | --stdio] [--queue N] [--deadline-ms MS]
//!                    [--read-workers N] [--session-ttl-secs S] [--slow-ms MS]
//!                    [--state-dir DIR] [--checkpoint-every N]
//! mgba-sta query     --connect ADDR [--timeout-ms MS] [--retries N]
//!                    [--backoff-ms MS] [--session NAME] [--proto 1|2]
//!                    [REQUEST...]
//! ```
//!
//! Every subcommand additionally accepts the global options:
//!
//! - `--threads N` (default: the `MGBA_THREADS` environment variable,
//!   else all cores) pins the worker-thread count of the parallel
//!   PBA-retiming and fitting kernels. Results are bit-identical for
//!   every thread count.
//! - `--profile` / `--profile=json` enables the observability layer
//!   (`obs`): hierarchical timed spans over load → select → build →
//!   solve → fold-back, a metrics registry, and per-iteration solver
//!   telemetry. `--profile` prints a pretty report to stderr;
//!   `--profile=json` writes `results/profile_<command>.json`.
//!   Instrumentation never changes results — outputs are bit-identical
//!   with and without it.
//! - `--trace FILE` records every span as a Chrome `trace_event` and
//!   writes the timeline JSON to FILE on success — load it in
//!   `chrome://tracing` or Perfetto. Independent of `--profile`; under
//!   `serve` each request's handler appears as its own span, and each
//!   request stage (queue wait, execute, reply write, …) as a complete
//!   event. The same bit-identity guarantee applies.
//! - `--log FILE` records the structured event log (`obs::events`) —
//!   typed lifecycle events with severity, monotonic sequence numbers,
//!   and session/request attribution — and writes it to FILE as JSON
//!   lines on success. Off by default with the same zero-overhead,
//!   bit-identity guarantee as the other instrumentation.
//!
//! Netlist files may be in the native text format (`.nl`), the
//! structural-Verilog subset (`.v`), or EDIF 2.0.0 (`.edif`),
//! auto-detected by content; `import` converts EDIF to the other
//! formats and `lint` runs the collected-issues validator on any of
//! them.

use mgba::prelude::*;
use optim::{run_flow, FlowConfig};
use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;

mod args;
use args::Args;

/// Writes to stdout, treating a broken pipe (e.g. `mgba-sta ... | head`)
/// as a clean exit instead of a panic.
fn emit(text: &str) -> Result<(), MgbaError> {
    match std::io::stdout().write_all(text.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
        Err(e) => Err(MgbaError::io("<stdout>", e)),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            // The usage wall helps when the command line was wrong; for
            // runtime failures (I/O, timeouts, solver faults) it buries
            // the actual error.
            if matches!(e, MgbaError::Usage(_)) {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  mgba-sta generate  <D1..D10|small:SEED> [--format text|verilog|edif] [--out FILE]
  mgba-sta import    --edif FILE [--format text|verilog] [--out FILE]
                     (strict EDIF 2.0.0 import; every collected issue is
                     printed to stderr, any error-severity issue fails)
  mgba-sta lint      <FILE> [--json]   (collected-issues netlist validator
                     over native text, Verilog, or EDIF, auto-detected;
                     exits nonzero when error-severity issues are found)
  mgba-sta stats     <FILE>
  mgba-sta report    <FILE> --period PS [--top N] [--weights WEIGHTS]
  mgba-sta fit       <FILE> --period PS [--solver gd|scg|scgrs|cgnr] [--out WEIGHTS]
  mgba-sta calibrate <D1..D10|small:SEED|FILE> [--period PS] [--solver ...] [--out WEIGHTS]
                     [--qor FILE]   (write the QoR accuracy dashboard JSON)
  mgba-sta flow      <FILE> --period PS [--timer gba|mgba]
  mgba-sta holdfix   <FILE> --period PS [--guard PS]
  mgba-sta corners   <FILE> --period PS
  mgba-sta sdf       <FILE> --period PS [--fit] [--out FILE]
  mgba-sta serve     [--listen ADDR | --stdio] [--queue N] [--deadline-ms MS]
                     [--read-workers N] [--session-ttl-secs S] [--slow-ms MS]
                     [--state-dir DIR] [--checkpoint-every N]
                     (N read-pool threads serve read-only queries from
                     lock-free session snapshots; 0 = funnel everything
                     through the writer lane. Sessions idle longer than S
                     seconds are evicted lazily; 0/unset = never.
                     --slow-ms records lane commands executing >= MS ms
                     in the per-session ring served by `slowlog`.
                     --state-dir makes sessions durable: every mutation is
                     fsynced to a per-session write-ahead log before it is
                     acknowledged, a checkpoint is cut every N records
                     [default 32], and a restarted server replays
                     checkpoint + WAL tail so reads answer byte-identically
                     after a crash. While it is set, `snapshot`/`restore`
                     file paths are confined to DIR — absolute paths and
                     `..` components are rejected)
  mgba-sta query     --connect ADDR [--timeout-ms MS] [--retries N] [--backoff-ms MS]
                     [--session NAME] [--proto 1|2] [REQUEST...]
                     (reads stdin when no REQUEST;
                     a bare word like `wns` or `metrics` means {\"cmd\":\"...\"};
                     a bare `metrics` prints the raw Prometheus exposition;
                     --session addresses a named server session (default
                     `default`); --proto 1 speaks the legacy sessionless
                     protocol; --timeout-ms bounds socket reads/writes,
                     default 30000, 0 disables; connect retries back off
                     exponentially, and the same budget replays in-flight
                     requests if the connection drops mid-stream — e.g.
                     across a server restart; see the at-least-once note
                     in the README)

global options:
  --threads N       worker threads for PBA retiming / fitting kernels
                    (default: MGBA_THREADS env, else all cores; 1 = serial;
                    results are identical for every value)
  --profile         print a span/metrics/solver-telemetry report to stderr
  --profile=json    write the report to results/profile_<command>.json
  --trace FILE      write a Chrome trace_event timeline (chrome://tracing)
  --log FILE        write the structured event log as JSON lines";

/// Where the `--profile` report goes.
#[derive(Clone, Copy, PartialEq)]
enum ProfileFormat {
    Text,
    Json,
}

fn run(argv: &[String]) -> Result<(), MgbaError> {
    let mut args = Args::new(argv);
    // Global flags, honored by every subcommand. They must be consumed
    // before the first positional read: `positional` treats the token
    // after an unconsumed `--flag` as that flag's value.
    if let Some(t) = args.option("--threads")? {
        let threads: usize = t.parse().map_err(|_| {
            MgbaError::Usage(format!("bad --threads `{t}` (want a non-negative integer)"))
        })?;
        parallel::set_global_threads(threads);
    }
    let profile = if args.flag("--profile=json") {
        Some(ProfileFormat::Json)
    } else if args.flag("--profile") {
        Some(ProfileFormat::Text)
    } else {
        None
    };
    if profile.is_some() {
        obs::set_enabled(true);
    }
    let trace_path = args.option("--trace")?;
    if trace_path.is_some() {
        obs::set_trace_enabled(true);
    }
    let log_path = args.option("--log")?;
    if log_path.is_some() {
        obs::set_log_enabled(true);
    }
    let command = args.positional("command")?;
    obs::events::emit(
        obs::events::Severity::Info,
        "cli.start",
        None,
        None,
        &[("command", command.clone())],
    );
    let result = {
        // Root span: the whole subcommand, named after it.
        let _span = obs::span(&command);
        match command.as_str() {
            "generate" => cmd_generate(&mut args),
            "import" => cmd_import(&mut args),
            "lint" => cmd_lint(&mut args),
            "stats" => cmd_stats(&mut args),
            "report" => cmd_report(&mut args),
            "fit" => cmd_fit(&mut args),
            "calibrate" => cmd_calibrate(&mut args),
            "flow" => cmd_flow(&mut args),
            "holdfix" => cmd_holdfix(&mut args),
            "corners" => cmd_corners(&mut args),
            "sdf" => cmd_sdf(&mut args),
            "serve" => cmd_serve(&mut args),
            "query" => cmd_query(&mut args),
            other => Err(MgbaError::Usage(format!("unknown command `{other}`"))),
        }
    };
    obs::events::emit(
        obs::events::Severity::Info,
        "cli.finish",
        None,
        None,
        &[
            ("command", command.clone()),
            ("ok", result.is_ok().to_string()),
        ],
    );
    if result.is_ok() {
        if let Some(path) = &trace_path {
            obs::set_trace_enabled(false);
            write_trace(path)?;
        }
        if let Some(path) = &log_path {
            obs::set_log_enabled(false);
            write_events(path)?;
        }
        if let Some(format) = profile {
            obs::set_enabled(false);
            write_profile(&command, format)?;
        }
    }
    result
}

/// Writes the collected Chrome trace_event timeline.
fn write_trace(path: &str) -> Result<(), MgbaError> {
    std::fs::write(path, obs::trace::export_json()).map_err(|e| MgbaError::io(path, e))?;
    match obs::trace::dropped_events() {
        0 => eprintln!("wrote trace {path}"),
        n => eprintln!("wrote trace {path} ({n} events dropped past cap)"),
    }
    Ok(())
}

/// Writes the structured event log as JSON lines (`--log FILE`).
fn write_events(path: &str) -> Result<(), MgbaError> {
    std::fs::write(path, obs::events::export_jsonl()).map_err(|e| MgbaError::io(path, e))?;
    match obs::events::evicted_events() {
        0 => eprintln!("wrote event log {path}"),
        n => eprintln!("wrote event log {path} ({n} events evicted past cap)"),
    }
    Ok(())
}

/// Emits the captured observability report in the requested format.
fn write_profile(command: &str, format: ProfileFormat) -> Result<(), MgbaError> {
    let report = obs::ProfileReport::capture();
    match format {
        ProfileFormat::Text => eprint!("{}", report.to_pretty()),
        ProfileFormat::Json => {
            let dir = Path::new("results");
            std::fs::create_dir_all(dir).map_err(|e| MgbaError::io(dir, e))?;
            let path = dir.join(format!("profile_{command}.json"));
            std::fs::write(&path, report.to_json()).map_err(|e| MgbaError::io(&path, e))?;
            eprintln!("wrote profile {}", path.display());
        }
    }
    Ok(())
}

fn cmd_generate(args: &mut Args) -> Result<(), MgbaError> {
    let spec = args.positional("design")?;
    let format = args.option("--format")?.unwrap_or_else(|| "text".into());
    let out = args.option("--out")?;
    args.finish()?;
    let netlist = parse_design(&spec)?;
    let text = match format.as_str() {
        "text" => netlist::write_netlist(&netlist),
        "verilog" => netlist::write_verilog(&netlist),
        "edif" => ingest::write_edif(&netlist),
        other => return Err(MgbaError::Usage(format!("unknown format `{other}`"))),
    };
    match out {
        Some(path) => {
            std::fs::write(&path, text).map_err(|e| MgbaError::io(&path, e))?;
            eprintln!(
                "wrote {} ({} cells, {} nets)",
                path,
                netlist.num_cells(),
                netlist.num_nets()
            );
        }
        None => emit(&text)?,
    }
    Ok(())
}

/// Strict EDIF 2.0.0 front door: runs the collected-issues load, prints
/// the whole report to stderr (warnings included), and converts the
/// design to the requested output format only when no error-severity
/// issue was found — so one run shows every defect instead of the first.
fn cmd_import(args: &mut Args) -> Result<(), MgbaError> {
    let file: String = args.required_option("--edif")?;
    let format = args.option("--format")?.unwrap_or_else(|| "text".into());
    let out = args.option("--out")?;
    args.finish()?;
    let text = std::fs::read_to_string(&file).map_err(|e| MgbaError::io(&file, e))?;
    let imported = ingest::lint_edif(&text);
    if !imported.report.issues.is_empty() {
        eprint!("{}", imported.report.render_text());
    }
    let netlist = match imported.netlist {
        Some(n) if imported.report.num_errors() == 0 => n,
        _ => {
            return Err(MgbaError::Lint {
                path: file.into(),
                errors: imported.report.num_errors().max(1),
                warnings: imported.report.num_warnings(),
            })
        }
    };
    let rendered = match format.as_str() {
        "text" => netlist::write_netlist(&netlist),
        "verilog" => netlist::write_verilog(&netlist),
        other => return Err(MgbaError::Usage(format!("unknown format `{other}`"))),
    };
    match out {
        Some(path) => {
            std::fs::write(&path, rendered).map_err(|e| MgbaError::io(&path, e))?;
            eprintln!(
                "imported {} ({} cells, {} nets) -> {}",
                file,
                netlist.num_cells(),
                netlist.num_nets(),
                path
            );
        }
        None => emit(&rendered)?,
    }
    Ok(())
}

/// Collected-issues validator over any supported netlist format
/// (auto-detected by content, like every other subcommand). Prints the
/// full report — text by default, a JSON object with `--json` — and
/// exits nonzero when error-severity issues are present.
fn cmd_lint(args: &mut Args) -> Result<(), MgbaError> {
    let file = args.positional("netlist file")?;
    let json = args.flag("--json");
    args.finish()?;
    let text = std::fs::read_to_string(&file).map_err(|e| MgbaError::io(&file, e))?;
    let head = text.trim_start();
    let report = if head.starts_with("(edif") || head.starts_with("(EDIF") {
        ingest::lint_edif(&text).report
    } else if head.starts_with("module") {
        // The Verilog reader is fail-fast; fold its first error into the
        // same report shape so callers see one output format.
        match netlist::parse_verilog(&text) {
            Ok(n) => netlist::lint_netlist(&n),
            Err(e) => {
                let mut r = netlist::LintReport::new();
                r.error(netlist::lint::codes::MALFORMED, None, e.to_string());
                r
            }
        }
    } else {
        netlist::lint_netlist_text(&text).1
    };
    if json {
        emit(&render_lint_json(&file, &report))?;
        emit("\n")?;
    } else {
        emit(&report.render_text())?;
    }
    if report.num_errors() > 0 {
        return Err(MgbaError::Lint {
            path: file.into(),
            errors: report.num_errors(),
            warnings: report.num_warnings(),
        });
    }
    Ok(())
}

/// Machine-readable `lint --json` payload: the same fields the server's
/// `lint` command answers with, so tooling can share a decoder.
fn render_lint_json(file: &str, report: &netlist::LintReport) -> String {
    use server::json::Value;
    use std::collections::BTreeMap;
    let issues = report
        .issues
        .iter()
        .map(|i| {
            let mut m = BTreeMap::new();
            m.insert("severity".to_owned(), Value::Str(i.severity.label().into()));
            m.insert("code".to_owned(), Value::Str(i.code.into()));
            m.insert("message".to_owned(), Value::Str(i.message.clone()));
            if let Some(s) = i.span {
                m.insert("line".to_owned(), Value::Num(f64::from(s.line)));
                m.insert("col".to_owned(), Value::Num(f64::from(s.col)));
            }
            Value::Obj(m)
        })
        .collect();
    let mut top = BTreeMap::new();
    top.insert("file".to_owned(), Value::Str(file.to_owned()));
    top.insert("errors".to_owned(), Value::Num(report.num_errors() as f64));
    top.insert(
        "warnings".to_owned(),
        Value::Num(report.num_warnings() as f64),
    );
    top.insert("issues".to_owned(), Value::Arr(issues));
    server::json::render(&Value::Obj(top))
}

fn cmd_stats(args: &mut Args) -> Result<(), MgbaError> {
    let file = args.positional("netlist file")?;
    args.finish()?;
    let netlist = load_netlist_file(&file)?;
    emit(&netlist::DesignStats::collect(&netlist).to_string())?;
    Ok(())
}

fn cmd_holdfix(args: &mut Args) -> Result<(), MgbaError> {
    let file = args.positional("netlist file")?;
    let period: f64 = args.required_option("--period")?;
    let guard: f64 = args.option("--guard")?.map_or(Ok(0.0), |g| {
        g.parse()
            .map_err(|_| MgbaError::Usage(format!("bad --guard `{g}`")))
    })?;
    args.finish()?;
    let mut sta = build_engine(load_netlist_file(&file)?, period)?;
    let report = optim::fix_hold_violations(&mut sta, guard);
    println!(
        "hold violations {} -> {}, {} pad buffers inserted, {} skipped for setup",
        report.violations_before,
        report.violations_after,
        report.buffers_added,
        report.skipped_for_setup
    );
    Ok(())
}

fn cmd_corners(args: &mut Args) -> Result<(), MgbaError> {
    let file = args.positional("netlist file")?;
    let period: f64 = args.required_option("--period")?;
    args.finish()?;
    let netlist = load_netlist_file(&file)?;
    let mc = sta::MultiCornerSta::new(
        &netlist,
        &Sdc::with_period(period),
        sta::Corner::signoff_set(),
    )?;
    emit(&mc.report())?;
    Ok(())
}

fn cmd_sdf(args: &mut Args) -> Result<(), MgbaError> {
    let file = args.positional("netlist file")?;
    let period: f64 = args.required_option("--period")?;
    let fit = args.flag("--fit");
    let out = args.option("--out")?;
    args.finish()?;
    let mut sta = build_engine(load_netlist_file(&file)?, period)?;
    if fit {
        let _ = run_mgba(&mut sta, &MgbaConfig::default(), Solver::ScgRs);
    }
    let sdf = sta::write_sdf(&sta);
    match out {
        Some(path) => std::fs::write(&path, sdf).map_err(|e| MgbaError::io(&path, e))?,
        None => emit(&sdf)?,
    }
    Ok(())
}

fn cmd_report(args: &mut Args) -> Result<(), MgbaError> {
    let file = args.positional("netlist file")?;
    let period: f64 = args.required_option("--period")?;
    let top: usize = args.option("--top")?.map_or(Ok(10), |t| {
        t.parse()
            .map_err(|_| MgbaError::Usage(format!("bad --top `{t}`")))
    })?;
    let weights_file = args.option("--weights")?;
    args.finish()?;
    let mut sta = build_engine(load_netlist_file(&file)?, period)?;
    if let Some(path) = weights_file {
        let text = std::fs::read_to_string(&path).map_err(|e| MgbaError::io(&path, e))?;
        let pairs = parse_weights(&text)?;
        let weights = mgba::apply_weights(sta.netlist(), &pairs)?;
        sta.set_weights(&weights);
        eprintln!("applied {} weights from {path}", pairs.len());
    }
    emit(&sta::timing_report(&sta, top))?;
    Ok(())
}

fn parse_solver(name: &str) -> Result<Solver, MgbaError> {
    Ok(match name {
        "gd" => Solver::Gd,
        "scg" => Solver::Scg,
        "scgrs" => Solver::ScgRs,
        "cgnr" => Solver::Cgnr,
        other => return Err(MgbaError::Usage(format!("unknown solver `{other}`"))),
    })
}

/// Prints the post-fit summary shared by `fit` and `calibrate`.
fn print_fit_report(report: &MgbaReport, sta: &Sta) {
    println!("design {}: {}", report.design, report.solver_name);
    println!(
        "  {} paths fitted over {} weighted cells ({:.1}% gate coverage)",
        report.num_paths,
        report.num_gates,
        100.0 * report.coverage
    );
    println!(
        "  solve: {} iterations, {} row gradients, {:.1} ms, converged = {}",
        report.iterations,
        report.rows_touched,
        report.solve_time.as_secs_f64() * 1e3,
        report.converged
    );
    println!(
        "  mse vs golden PBA: {:.3e} -> {:.3e}",
        report.mse_before, report.mse_after
    );
    println!(
        "  pass ratio: {:.2}% -> {:.2}%",
        report.pass_before.percent(),
        report.pass_after.percent()
    );
    println!(
        "  corrected timing: WNS {:.1} ps, TNS {:.1} ps, {} violating endpoints",
        sta.wns(),
        sta.tns(),
        sta.violating_endpoints().len()
    );
}

fn cmd_fit(args: &mut Args) -> Result<(), MgbaError> {
    let file = args.positional("netlist file")?;
    let period: f64 = args.required_option("--period")?;
    let solver = parse_solver(&args.option("--solver")?.unwrap_or_else(|| "scgrs".into()))?;
    let out = args.option("--out")?;
    args.finish()?;
    let mut sta = build_engine(load_netlist_file(&file)?, period)?;
    let report = run_mgba(&mut sta, &MgbaConfig::default(), solver);
    if let Some(path) = &out {
        let text = write_weights(sta.netlist(), &report.weights);
        atomic_write_text(path, &text)?;
        eprintln!("wrote weights sidecar {path}");
    }
    print_fit_report(&report, &sta);
    Ok(())
}

/// Like `fit`, but accepts generator specs directly and derives a tight
/// clock period when `--period` is omitted — the one-command way to
/// exercise the full load → select → build → solve → fold-back pipeline
/// (and, with `--profile`, to capture its span tree and solver
/// telemetry).
fn cmd_calibrate(args: &mut Args) -> Result<(), MgbaError> {
    let spec = args.positional("design or netlist file")?;
    let period: Option<f64> = match args.option("--period")? {
        Some(p) => Some(
            p.parse()
                .map_err(|_| MgbaError::Usage(format!("bad value `{p}` for --period")))?,
        ),
        None => None,
    };
    let solver = parse_solver(&args.option("--solver")?.unwrap_or_else(|| "scgrs".into()))?;
    let out = args.option("--out")?;
    let qor = args.option("--qor")?;
    args.finish()?;
    let netlist = load_design_or_file(&spec)?;
    let period = match period {
        Some(p) => p,
        None => {
            let p = auto_period(&netlist)?;
            eprintln!("auto-derived clock period {p:.1} ps");
            p
        }
    };
    let mut sta = build_engine(netlist, period)?;
    // Dogfood the validating builder (equivalent to `MgbaConfig::default`).
    let config = MgbaConfig::builder().build()?;
    let report = match &qor {
        Some(path) => {
            let (report, accuracy) = run_mgba_with_accuracy(&mut sta, &config, solver);
            std::fs::write(path, accuracy.to_json()).map_err(|e| MgbaError::io(path, e))?;
            eprintln!("wrote QoR accuracy report {path}");
            report
        }
        None => run_mgba(&mut sta, &config, solver),
    };
    if let Some(path) = &out {
        let text = write_weights(sta.netlist(), &report.weights);
        atomic_write_text(path, &text)?;
        eprintln!("wrote weights sidecar {path}");
    }
    print_fit_report(&report, &sta);
    Ok(())
}

fn cmd_flow(args: &mut Args) -> Result<(), MgbaError> {
    let file = args.positional("netlist file")?;
    let period: f64 = args.required_option("--period")?;
    let timer = args.option("--timer")?.unwrap_or_else(|| "gba".into());
    args.finish()?;
    let mut sta = build_engine(load_netlist_file(&file)?, period)?;
    let cfg = match timer.as_str() {
        "gba" => FlowConfig::gba(),
        "mgba" => FlowConfig::mgba(MgbaConfig::default(), Solver::ScgRs),
        other => return Err(MgbaError::Usage(format!("unknown timer `{other}`"))),
    };
    let r = run_flow(&mut sta, &cfg);
    println!("design {} [{} timer]", r.design, r.timer);
    println!(
        "  {} passes: {} upsizes, {} buffers, {} recovery downsizes; closed = {}",
        r.passes, r.counts.upsizes, r.counts.buffers, r.counts.downsizes, r.closed
    );
    println!(
        "  runtime {:.0} ms (mGBA fitting {:.0} ms)",
        r.elapsed.as_secs_f64() * 1e3,
        r.mgba_time.as_secs_f64() * 1e3
    );
    println!(
        "  area {:.0} -> {:.0} um^2, leakage {:.0} -> {:.0} nW, buffers {} -> {}",
        r.qor_initial.area,
        r.qor_final.area,
        r.qor_initial.leakage,
        r.qor_final.leakage,
        r.qor_initial.buffers,
        r.qor_final.buffers
    );
    println!(
        "  signoff PBA: WNS {:.1} ps, TNS {:.1} ps, {} violating endpoints",
        r.qor_final_pba.wns, r.qor_final_pba.tns, r.qor_final_pba.violating_endpoints
    );
    Ok(())
}

/// Runs the JSON-lines timing-query daemon (see `DESIGN.md` §9 for the
/// protocol). With `--listen` the server accepts TCP connections until a
/// `shutdown` request drains the queue; with `--stdio` it serves one
/// request stream on stdin/stdout and exits on EOF or `shutdown` —
/// ideal for pipelines and smoke tests. `--state-dir` turns on the
/// durability layer (DESIGN.md §16): per-session write-ahead logs,
/// periodic checkpoints, and crash-safe replay on restart.
fn cmd_serve(args: &mut Args) -> Result<(), MgbaError> {
    let stdio = args.flag("--stdio");
    let listen = args.option("--listen")?;
    let queue_depth: usize = args.option("--queue")?.map_or(Ok(64), |q| {
        q.parse()
            .ok()
            .filter(|n| *n > 0)
            .ok_or_else(|| MgbaError::Usage(format!("bad --queue `{q}` (want a positive integer)")))
    })?;
    let default_deadline_ms: Option<u64> = match args.option("--deadline-ms")? {
        Some(d) => Some(
            d.parse()
                .map_err(|_| MgbaError::Usage(format!("bad --deadline-ms `{d}`")))?,
        ),
        None => None,
    };
    let read_workers: usize = args.option("--read-workers")?.map_or(Ok(0), |n| {
        n.parse().map_err(|_| {
            MgbaError::Usage(format!(
                "bad --read-workers `{n}` (want a non-negative integer)"
            ))
        })
    })?;
    let session_ttl_secs: Option<u64> = match args.option("--session-ttl-secs")? {
        Some(s) => Some(s.parse().map_err(|_| {
            MgbaError::Usage(format!(
                "bad --session-ttl-secs `{s}` (want a non-negative integer; 0 disables eviction)"
            ))
        })?),
        None => None,
    };
    let slow_ms: Option<u64> = match args.option("--slow-ms")? {
        Some(s) => Some(s.parse().map_err(|_| {
            MgbaError::Usage(format!(
                "bad --slow-ms `{s}` (want milliseconds; 0 records every lane command)"
            ))
        })?),
        None => None,
    };
    let state_dir: Option<std::path::PathBuf> =
        args.option("--state-dir")?.map(std::path::PathBuf::from);
    let checkpoint_every: Option<u64> = match args.option("--checkpoint-every")? {
        Some(n) => Some(n.parse().ok().filter(|v| *v > 0).ok_or_else(|| {
            MgbaError::Usage(format!(
                "bad --checkpoint-every `{n}` (want a positive record count)"
            ))
        })?),
        None => None,
    };
    if checkpoint_every.is_some() && state_dir.is_none() {
        return Err(MgbaError::Usage(
            "--checkpoint-every requires --state-dir".into(),
        ));
    }
    args.finish()?;
    let config = server::ServerConfig {
        queue_depth,
        default_deadline_ms,
        read_workers,
        session_ttl_secs,
        slow_ms,
        state_dir,
        checkpoint_every: checkpoint_every
            .unwrap_or(server::ServerConfig::default().checkpoint_every),
    };
    if stdio {
        if listen.is_some() {
            return Err(MgbaError::Usage(
                "--stdio and --listen are mutually exclusive".into(),
            ));
        }
        return server::serve_stdio(&config);
    }
    let addr = listen.unwrap_or_else(|| "127.0.0.1:7878".into());
    let srv = server::Server::bind(&addr, config)?;
    eprintln!("mgba-server listening on {}", srv.local_addr()?);
    srv.run()
}

/// Bare-word request sugar: `wns` → `{"cmd":"wns"}`. Anything that
/// isn't a plain identifier passes through untouched.
fn desugar_request(line: &str) -> String {
    let t = line.trim();
    if !t.is_empty()
        && !t.starts_with('{')
        && t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        format!("{{\"cmd\":\"{t}\"}}")
    } else {
        line.to_owned()
    }
}

/// Maps a typed-client I/O error onto the wire-appropriate error: an
/// expired read/write timeout becomes [`MgbaError::Timeout`] (nonzero
/// exit, distinguishable from connection refusal); everything else
/// passes through.
fn io_or_timeout(addr: &str, timeout_ms: u64, e: MgbaError) -> MgbaError {
    use std::io::ErrorKind;
    match &e {
        MgbaError::Io { source, .. }
            if matches!(source.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
        {
            MgbaError::timeout(format!("waiting for {addr}"), timeout_ms)
        }
        _ => e,
    }
}

/// Stamps protocol v2 session addressing onto a request line: a JSON
/// object that names neither `proto` nor `session` gains both. Lines
/// that are not JSON objects (the server answers those with a parse
/// error) and lines that address explicitly pass through untouched.
fn address_request(line: &str, proto: u64, session: &str) -> String {
    if proto < 2 {
        return line.to_owned();
    }
    let Ok(server::json::Value::Obj(mut m)) = server::json::parse(line) else {
        return line.to_owned();
    };
    if m.contains_key("proto") || m.contains_key("session") {
        return line.to_owned();
    }
    m.insert("proto".to_owned(), server::json::Value::Num(proto as f64));
    m.insert(
        "session".to_owned(),
        server::json::Value::Str(session.to_owned()),
    );
    server::json::render(&server::json::Value::Obj(m))
}

/// Batch client for a running `serve` daemon: sends each REQUEST line
/// (or, with none given, every non-blank stdin line), then prints the
/// server's responses in order, one JSON object per line. Requests may
/// be bare command words ([`desugar_request`]); a bare `metrics`
/// request prints its Prometheus exposition as raw text instead of the
/// JSON envelope, so `mgba-sta query --connect HOST metrics` pipes
/// straight into Prometheus tooling.
///
/// Speaks protocol v2 through [`server::client::Client`]: every request
/// that does not address a session explicitly is stamped with
/// `--session` (default `default`); `--proto 1` reverts to the legacy
/// sessionless grammar (the server answers those `deprecated:true`).
///
/// The socket carries read/write timeouts (`--timeout-ms`, default
/// 30 000; 0 disables) so a wedged daemon surfaces as a typed timeout
/// error with a nonzero exit instead of a hang; the initial connect
/// retries with exponential backoff (`--retries`, `--backoff-ms`).
fn cmd_query(args: &mut Args) -> Result<(), MgbaError> {
    use server::client::{Client, ClientConfig};
    use std::io::BufRead as _;

    let connect: String = args.required_option("--connect")?;
    let timeout_ms: u64 = args.option("--timeout-ms")?.map_or(Ok(30_000), |t| {
        t.parse()
            .map_err(|_| MgbaError::Usage(format!("bad --timeout-ms `{t}` (want milliseconds)")))
    })?;
    let retries: u32 = args.option("--retries")?.map_or(Ok(2), |r| {
        r.parse()
            .map_err(|_| MgbaError::Usage(format!("bad --retries `{r}` (want a count)")))
    })?;
    let backoff_ms: u64 = args.option("--backoff-ms")?.map_or(Ok(50), |b| {
        b.parse()
            .map_err(|_| MgbaError::Usage(format!("bad --backoff-ms `{b}` (want milliseconds)")))
    })?;
    let session: String = args
        .option("--session")?
        .unwrap_or_else(|| server::proto::DEFAULT_SESSION.to_owned());
    server::proto::validate_session_name(&session)?;
    let proto: u64 = args.option("--proto")?.map_or(Ok(2), |p| {
        p.parse()
            .ok()
            .filter(|v| (1..=2).contains(v))
            .ok_or_else(|| MgbaError::Usage(format!("bad --proto `{p}` (want 1 or 2)")))
    })?;
    let mut raw_requests = Vec::new();
    while let Ok(r) = args.positional("request") {
        raw_requests.push(r);
    }
    args.finish()?;
    if raw_requests.is_empty() {
        for line in std::io::stdin().lock().lines() {
            let line = line.map_err(|e| MgbaError::io("<stdin>", e))?;
            if !line.trim().is_empty() {
                raw_requests.push(line);
            }
        }
    }
    let requests: Vec<String> = raw_requests
        .iter()
        .map(|r| address_request(&desugar_request(r), proto, &session))
        .collect();
    let mut client = Client::connect(
        &connect,
        ClientConfig {
            timeout_ms,
            connect_retries: retries,
            backoff_ms,
            proto,
            session,
        },
    )
    .map_err(|e| io_or_timeout(&connect, timeout_ms, e))?;
    // Pipelined: all requests go out, then exactly one response line
    // comes back per request, in admission order.
    for request in &requests {
        client
            .send_raw(request)
            .map_err(|e| io_or_timeout(&connect, timeout_ms, e))?;
    }
    for raw in &raw_requests {
        match client.recv_raw() {
            Ok(response) => {
                if raw.trim() == "metrics" {
                    if let Some(exposition) = extract_exposition(&response) {
                        emit(&exposition)?;
                        continue;
                    }
                }
                emit(&response)?;
                emit("\n")?;
            }
            Err(MgbaError::Io { source, .. })
                if source.kind() == std::io::ErrorKind::UnexpectedEof =>
            {
                return Err(MgbaError::Usage(
                    "server closed the connection before answering".into(),
                ))
            }
            Err(e) => return Err(io_or_timeout(&connect, timeout_ms, e)),
        }
    }
    Ok(())
}

/// Pulls `result.exposition` out of a successful `metrics` response.
/// Returns `None` for error envelopes (the caller prints them as-is).
fn extract_exposition(response: &str) -> Option<String> {
    let v = server::json::parse(response).ok()?;
    v.get("result")?
        .get("exposition")?
        .as_str()
        .map(str::to_owned)
}
