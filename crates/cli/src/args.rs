//! Minimal argument parsing for `mgba-sta` (kept dependency-free on
//! purpose: the workspace's external dependencies are limited to the
//! numeric/test stack). All failures surface as [`MgbaError::Usage`].

use mgba::MgbaError;

fn usage(message: impl Into<String>) -> MgbaError {
    MgbaError::Usage(message.into())
}

/// A tiny positional + `--option value` argument reader.
pub struct Args {
    argv: Vec<String>,
    consumed: Vec<bool>,
}

impl Args {
    /// Wraps the raw argument vector (without the program name).
    pub fn new(argv: &[String]) -> Self {
        Self {
            argv: argv.to_vec(),
            consumed: vec![false; argv.len()],
        }
    }

    /// Takes the next unconsumed positional (non `--`) argument.
    ///
    /// # Errors
    ///
    /// Returns an error naming `what` if none remains.
    pub fn positional(&mut self, what: &str) -> Result<String, MgbaError> {
        for i in 0..self.argv.len() {
            if self.consumed[i] || self.argv[i].starts_with("--") {
                continue;
            }
            // A token right after an unconsumed `--flag` is that flag's
            // value, not a positional (`report --period 1200 file.nl`).
            if i > 0 && !self.consumed[i - 1] && self.argv[i - 1].starts_with("--") {
                continue;
            }
            self.consumed[i] = true;
            return Ok(self.argv[i].clone());
        }
        Err(usage(format!("missing {what}")))
    }

    /// Takes `--name value` if present.
    ///
    /// # Errors
    ///
    /// Returns an error if the flag is present without a value.
    pub fn option(&mut self, name: &str) -> Result<Option<String>, MgbaError> {
        for i in 0..self.argv.len() {
            if !self.consumed[i] && self.argv[i] == name {
                self.consumed[i] = true;
                let v = self
                    .argv
                    .get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .cloned()
                    .ok_or_else(|| usage(format!("{name} requires a value")))?;
                self.consumed[i + 1] = true;
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    /// Takes a bare `--name` flag if present (no value).
    pub fn flag(&mut self, name: &str) -> bool {
        for i in 0..self.argv.len() {
            if !self.consumed[i] && self.argv[i] == name {
                self.consumed[i] = true;
                return true;
            }
        }
        false
    }

    /// Takes a required `--name value` parsed into `T`.
    ///
    /// # Errors
    ///
    /// Returns an error if missing or unparsable.
    pub fn required_option<T: std::str::FromStr>(&mut self, name: &str) -> Result<T, MgbaError> {
        let v = self
            .option(name)?
            .ok_or_else(|| usage(format!("missing required {name}")))?;
        v.parse()
            .map_err(|_| usage(format!("bad value `{v}` for {name}")))
    }

    /// Fails if any argument was not consumed.
    ///
    /// # Errors
    ///
    /// Returns an error naming the first unrecognized argument.
    pub fn finish(&mut self) -> Result<(), MgbaError> {
        for (i, used) in self.consumed.iter().enumerate() {
            if !used {
                return Err(usage(format!("unrecognized argument `{}`", self.argv[i])));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::new(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn positional_and_options_mix() {
        let mut a = args(&["report", "file.nl", "--period", "1200", "--top", "5"]);
        assert_eq!(a.positional("command").unwrap(), "report");
        assert_eq!(a.positional("file").unwrap(), "file.nl");
        let p: f64 = a.required_option("--period").unwrap();
        assert_eq!(p, 1200.0);
        assert_eq!(a.option("--top").unwrap(), Some("5".into()));
        a.finish().unwrap();
    }

    #[test]
    fn missing_positional_is_an_error() {
        let mut a = args(&["--period", "10"]);
        assert!(matches!(a.positional("command"), Err(MgbaError::Usage(_))));
    }

    #[test]
    fn options_before_positionals_are_skipped() {
        let mut a = args(&["report", "--period", "1200", "file.nl"]);
        assert_eq!(a.positional("command").unwrap(), "report");
        assert_eq!(a.positional("file").unwrap(), "file.nl");
        let p: f64 = a.required_option("--period").unwrap();
        assert_eq!(p, 1200.0);
        a.finish().unwrap();
    }

    #[test]
    fn option_without_value_is_an_error() {
        let mut a = args(&["cmd", "--period"]);
        let _ = a.positional("command");
        assert!(a.required_option::<f64>("--period").is_err());
    }

    #[test]
    fn unconsumed_arguments_rejected() {
        let mut a = args(&["cmd", "extra"]);
        let _ = a.positional("command");
        assert!(matches!(a.finish(), Err(MgbaError::Usage(_))));
    }

    #[test]
    fn flags_are_bare() {
        let mut a = args(&["cmd", "--fit", "--out", "x.sdf"]);
        let _ = a.positional("command");
        assert!(a.flag("--fit"));
        assert!(!a.flag("--fit"), "flag is consumed once");
        assert_eq!(a.option("--out").unwrap(), Some("x.sdf".into()));
        a.finish().unwrap();
    }

    #[test]
    fn absent_option_is_none() {
        let mut a = args(&["cmd"]);
        let _ = a.positional("command");
        assert_eq!(a.option("--nope").unwrap(), None);
        a.finish().unwrap();
    }
}
