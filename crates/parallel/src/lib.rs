//! Deterministic parallel execution primitives for the mGBA workspace.
//!
//! The container this workspace builds in has no registry access, so the
//! layer is built directly on [`std::thread::scope`] instead of rayon.
//! Every primitive is **deterministic by construction**: results are
//! bit-identical whether a call runs on one thread or many.
//!
//! Two rules make that hold:
//!
//! 1. **Order-preserving maps.** [`par_map`] / [`par_fill`] write each
//!    element's result into its own indexed slot; which thread computes
//!    an element never affects the value or its position.
//! 2. **Blocked reductions.** [`par_block_reduce`] splits the index
//!    space into fixed-size blocks whose boundaries depend only on the
//!    problem size — never on the thread count — and folds the block
//!    partials serially in block order. The serial path runs the exact
//!    same blocked loop, so `threads = 1` and `threads = N` produce the
//!    same floating-point rounding.
//!
//! The effective thread count is resolved per call site from a
//! [`Parallelism`] value; `Parallelism::new(0)` defers to the process
//! default (CLI `--threads`, then the `MGBA_THREADS` environment
//! variable, then all available cores).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default block length for blocked reductions. A function of nothing —
/// block boundaries must never depend on the thread count.
pub const REDUCE_BLOCK: usize = 1024;

/// Below this many items a map runs inline; spawning threads for tiny
/// batches costs more than it saves.
pub const PAR_MIN_ITEMS: usize = 64;

/// Process-wide thread-count override (0 = unset). Set once by the CLI
/// from `--threads`; read by every `Parallelism::new(0)` resolution.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Installs a process-wide thread-count default (0 clears it back to
/// environment/auto resolution).
pub fn set_global_threads(threads: usize) {
    GLOBAL_THREADS.store(threads, Ordering::SeqCst);
}

/// The process-wide [`Parallelism`], resolving the `--threads` override,
/// then `MGBA_THREADS`, then all available cores.
pub fn global() -> Parallelism {
    Parallelism::new(0)
}

/// A resolved degree of parallelism (`threads >= 1`).
///
/// `threads == 1` runs every primitive inline on the calling thread via
/// the identical code path, so it doubles as the exact-serial mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Resolves a requested thread count. `0` means "default": the
    /// process-wide override installed by [`set_global_threads`], else
    /// the `MGBA_THREADS` environment variable, else all available
    /// cores.
    pub fn new(threads: usize) -> Self {
        let resolved = if threads > 0 {
            threads
        } else {
            let global = GLOBAL_THREADS.load(Ordering::SeqCst);
            if global > 0 {
                global
            } else {
                from_env().unwrap_or_else(available)
            }
        };
        Self {
            threads: resolved.max(1),
        }
    }

    /// Exactly one thread: the serial code path.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// The resolved thread count (always >= 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether work runs inline on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::new(0)
    }
}

/// Parses `MGBA_THREADS` (ignored when unset, empty, `0`, or invalid).
fn from_env() -> Option<usize> {
    std::env::var("MGBA_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Number of cores the OS reports (1 if it cannot say).
fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items`, preserving order. Result `i` lands in slot
/// `i` no matter which thread computed it, so the output is identical
/// to `items.iter().map(f).collect()` for any thread count.
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = par.threads().min(n);
    if threads <= 1 || n < PAR_MIN_ITEMS {
        return items.iter().map(&f).collect();
    }

    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);

    // Several chunks per thread so uneven items still balance; each job
    // owns a disjoint window of the output, keeping the fill safe and
    // position-exact without any unsafe code.
    let chunk = n.div_ceil(threads * 4).max(1);
    let jobs: Vec<(&[T], &mut [Option<R>])> =
        items.chunks(chunk).zip(out.chunks_mut(chunk)).collect();
    let queue = Mutex::new(jobs.into_iter());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = queue.lock().expect("parallel job queue poisoned").next();
                let Some((input, slots)) = job else { break };
                for (slot, item) in slots.iter_mut().zip(input) {
                    *slot = Some(f(item));
                }
            });
        }
    });

    out.into_iter()
        .map(|r| r.expect("all parallel map slots filled"))
        .collect()
}

/// Overwrites `out[i] = f(i)` for every index, preserving order.
/// Deterministic for the same reason as [`par_map`]; useful when the
/// caller owns a reusable output buffer.
pub fn par_fill<R, F>(par: Parallelism, out: &mut [R], f: F)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let n = out.len();
    let threads = par.threads().min(n);
    if threads <= 1 || n < PAR_MIN_ITEMS {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }

    let chunk = n.div_ceil(threads * 4).max(1);
    let jobs: Vec<(usize, &mut [R])> = out
        .chunks_mut(chunk)
        .enumerate()
        .map(|(j, window)| (j * chunk, window))
        .collect();
    let queue = Mutex::new(jobs.into_iter());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = queue.lock().expect("parallel job queue poisoned").next();
                let Some((start, window)) = job else { break };
                for (offset, slot) in window.iter_mut().enumerate() {
                    *slot = f(start + offset);
                }
            });
        }
    });
}

/// Fixed-size block decomposition of `0..n`: boundaries depend only on
/// `n` and `block`, never on the thread count.
fn blocks(n: usize, block: usize) -> Vec<Range<usize>> {
    let block = block.max(1);
    (0..n.div_ceil(block))
        .map(|j| j * block..((j + 1) * block).min(n))
        .collect()
}

/// Reduces `0..n` deterministically: `map` turns each fixed-size block
/// into a partial, partials fold serially **in block order**. Both the
/// serial and parallel paths run this exact structure, so results are
/// bit-identical across thread counts.
pub fn par_block_reduce<A, M, F>(par: Parallelism, n: usize, block: usize, map: M, fold: F) -> A
where
    A: Send + Default,
    M: Fn(Range<usize>) -> A + Sync,
    F: Fn(A, A) -> A,
{
    let partials = par_map(par, &blocks(n, block), |r| map(r.clone()));
    partials.into_iter().fold(A::default(), fold)
}

/// Deterministic blocked sum of `f(i)` over `0..n` with the default
/// block size. The common case of [`par_block_reduce`].
pub fn par_sum<F>(par: Parallelism, n: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    par_block_reduce(
        par,
        n,
        REDUCE_BLOCK,
        |range| range.map(&f).sum::<f64>(),
        |a, b| a + b,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_resolves_explicit_and_floor() {
        assert_eq!(Parallelism::new(3).threads(), 3);
        assert!(Parallelism::serial().is_serial());
        assert!(Parallelism::new(0).threads() >= 1);
    }

    #[test]
    fn global_override_wins_and_clears() {
        set_global_threads(5);
        assert_eq!(global().threads(), 5);
        set_global_threads(0);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn par_map_preserves_order_for_any_thread_count() {
        let items: Vec<u64> = (0..10_000).collect();
        let serial = par_map(Parallelism::serial(), &items, |&x| x * x + 1);
        for threads in [2, 3, 8] {
            let parallel = par_map(Parallelism::new(threads), &items, |&x| x * x + 1);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn par_fill_matches_serial_fill() {
        let mut serial = vec![0.0f64; 4097];
        let mut parallel = vec![0.0f64; 4097];
        par_fill(Parallelism::serial(), &mut serial, |i| (i as f64).sqrt());
        par_fill(Parallelism::new(4), &mut parallel, |i| (i as f64).sqrt());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn blocked_sum_is_bit_identical_across_thread_counts() {
        // Values chosen so naive reassociation would change the result.
        let f = |i: usize| 1.0 / (i as f64 + 1.0) * if i.is_multiple_of(3) { 1e-9 } else { 1e9 };
        let n = 50_001;
        let serial = par_sum(Parallelism::serial(), n, f);
        for threads in [2, 4, 7] {
            let parallel = par_sum(Parallelism::new(threads), n, f);
            assert_eq!(
                serial.to_bits(),
                parallel.to_bits(),
                "threads={threads}: {serial} vs {parallel}"
            );
        }
    }

    #[test]
    fn block_decomposition_depends_only_on_n() {
        let bs = blocks(2500, 1024);
        assert_eq!(bs, vec![0..1024, 1024..2048, 2048..2500]);
        assert!(blocks(0, 1024).is_empty());
    }

    #[test]
    fn generic_block_reduce_folds_in_block_order() {
        // Concatenate block labels: order-sensitive fold detects any
        // reordering of partials.
        let labels = par_block_reduce(
            Parallelism::new(4),
            10,
            3,
            |r| format!("[{}..{})", r.start, r.end),
            |a, b| a + &b,
        );
        assert_eq!(labels, "[0..3)[3..6)[6..9)[9..10)");
    }
}
