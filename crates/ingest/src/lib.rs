//! Standard-format netlist ingestion — the front door for designs that
//! did not come out of the in-tree generator.
//!
//! Two halves:
//!
//! - [`sexpr`]: a zero-dependency S-expression tokenizer/parser with
//!   1-based line/column spans on every atom and list (the same strict,
//!   no-external-deps discipline as the server's JSON parser);
//! - [`edif`]: an EDIF 2.0.0 netlist importer/exporter sitting on it —
//!   library/cell/view resolution, hierarchy flattening onto the
//!   [`netlist`] model, and source locations retained on every
//!   constructed object so the collected-issues linter
//!   ([`netlist::lint`]) can point findings back into the file.
//!
//! The strict loader ([`import_edif`]) and the collected-issues path
//! ([`lint_edif`]) share one elaboration pass: a strict import is
//! "lint, then surface the first error-severity issue".
//!
//! ```
//! use netlist::GeneratorConfig;
//!
//! let design = GeneratorConfig::small(7).generate();
//! let text = ingest::write_edif(&design);
//! let (imported, _sources) = ingest::import_edif(&text).expect("round trip");
//! assert_eq!(imported.num_cells(), design.num_cells());
//! ```

pub mod edif;
pub mod sexpr;

pub use edif::{import_edif, lint_edif, write_edif, EdifError, EdifImport};
pub use sexpr::{parse_sexpr, Sexpr, SexprError};
