//! S-expression reader with source spans.
//!
//! The subset EDIF 2.0.0 is written in: lists, bare atoms (identifiers
//! and numbers), and double-quoted strings. Every node carries the
//! 1-based line/column where it started, so downstream diagnostics can
//! point at the offending token instead of the whole file.
//!
//! Zero external dependencies, same discipline as the server's strict
//! JSON parser: malformed input is a typed error with a location, never
//! a panic.

use netlist::SrcSpan;
use std::error::Error;
use std::fmt;

/// One parsed node.
#[derive(Debug, Clone, PartialEq)]
pub enum Sexpr {
    /// Bare atom (identifier, keyword, or number).
    Atom {
        /// The token text, verbatim.
        text: String,
        /// Where the token started.
        span: SrcSpan,
    },
    /// Double-quoted string (quotes stripped, no escape processing —
    /// EDIF strings carry none we need).
    Str {
        /// The string contents.
        text: String,
        /// Where the opening quote sat.
        span: SrcSpan,
    },
    /// Parenthesized list.
    List {
        /// Child nodes in source order.
        items: Vec<Sexpr>,
        /// Where the opening parenthesis sat.
        span: SrcSpan,
    },
}

impl Sexpr {
    /// The node's source position.
    pub fn span(&self) -> SrcSpan {
        match self {
            Sexpr::Atom { span, .. } | Sexpr::Str { span, .. } | Sexpr::List { span, .. } => *span,
        }
    }

    /// Atom text, if this is an atom.
    pub fn as_atom(&self) -> Option<&str> {
        match self {
            Sexpr::Atom { text, .. } => Some(text),
            _ => None,
        }
    }

    /// String contents, if this is a string literal.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Sexpr::Str { text, .. } => Some(text),
            _ => None,
        }
    }

    /// Child list, if this is a list.
    pub fn as_list(&self) -> Option<&[Sexpr]> {
        match self {
            Sexpr::List { items, .. } => Some(items),
            _ => None,
        }
    }

    /// The list's leading keyword, lower-cased (EDIF keywords are
    /// case-insensitive). `None` for non-lists and empty lists.
    pub fn keyword(&self) -> Option<String> {
        self.as_list()?
            .first()?
            .as_atom()
            .map(|s| s.to_ascii_lowercase())
    }

    /// Children of a list after the keyword.
    pub fn args(&self) -> &[Sexpr] {
        match self.as_list() {
            Some(items) if !items.is_empty() => &items[1..],
            _ => &[],
        }
    }

    /// First child list whose keyword is `kw`.
    pub fn child(&self, kw: &str) -> Option<&Sexpr> {
        self.args()
            .iter()
            .find(|c| c.keyword().as_deref() == Some(kw))
    }

    /// All child lists whose keyword is `kw`, in source order.
    pub fn children<'a>(&'a self, kw: &'a str) -> impl Iterator<Item = &'a Sexpr> + 'a {
        self.args()
            .iter()
            .filter(move |c| c.keyword().as_deref() == Some(kw))
    }
}

/// A lexical or structural S-expression error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SexprError {
    /// Where the problem was detected.
    pub span: SrcSpan,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for SexprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl Error for SexprError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

#[derive(Debug)]
enum Tok {
    Open(SrcSpan),
    Close(SrcSpan),
    Atom(String, SrcSpan),
    Str(String, SrcSpan),
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn here(&self) -> SrcSpan {
        SrcSpan::new(self.line, self.col)
    }

    fn bump(&mut self) -> u8 {
        let b = self.src[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        b
    }

    fn next_tok(&mut self) -> Result<Option<Tok>, SexprError> {
        loop {
            let Some(&b) = self.src.get(self.pos) else {
                return Ok(None);
            };
            if b.is_ascii_whitespace() {
                self.bump();
                continue;
            }
            let span = self.here();
            return match b {
                b'(' => {
                    self.bump();
                    Ok(Some(Tok::Open(span)))
                }
                b')' => {
                    self.bump();
                    Ok(Some(Tok::Close(span)))
                }
                b'"' => {
                    self.bump();
                    let start = self.pos;
                    while let Some(&c) = self.src.get(self.pos) {
                        if c == b'"' {
                            let text =
                                String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                            self.bump();
                            return Ok(Some(Tok::Str(text, span)));
                        }
                        if c == b'\n' {
                            return Err(SexprError {
                                span,
                                message: "unterminated string literal".into(),
                            });
                        }
                        self.bump();
                    }
                    Err(SexprError {
                        span,
                        message: "unterminated string literal".into(),
                    })
                }
                _ => {
                    let start = self.pos;
                    while let Some(&c) = self.src.get(self.pos) {
                        if c.is_ascii_whitespace() || c == b'(' || c == b')' || c == b'"' {
                            break;
                        }
                        self.bump();
                    }
                    let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    Ok(Some(Tok::Atom(text, span)))
                }
            };
        }
    }
}

/// Parses one top-level S-expression (trailing whitespace allowed,
/// trailing tokens rejected).
///
/// # Errors
///
/// Returns a [`SexprError`] with a line/column span for unbalanced
/// parentheses, unterminated strings, or content outside the document.
pub fn parse_sexpr(src: &str) -> Result<Sexpr, SexprError> {
    let mut lex = Lexer::new(src);
    let mut stack: Vec<(Vec<Sexpr>, SrcSpan)> = Vec::new();
    let mut top: Option<Sexpr> = None;

    while let Some(tok) = lex.next_tok()? {
        if top.is_some() {
            let span = match &tok {
                Tok::Open(s) | Tok::Close(s) => *s,
                Tok::Atom(_, s) | Tok::Str(_, s) => *s,
            };
            return Err(SexprError {
                span,
                message: "content after the top-level expression".into(),
            });
        }
        let node = match tok {
            Tok::Open(span) => {
                stack.push((Vec::new(), span));
                continue;
            }
            Tok::Close(span) => match stack.pop() {
                Some((items, open)) => Sexpr::List { items, span: open },
                None => {
                    return Err(SexprError {
                        span,
                        message: "unbalanced `)`".into(),
                    })
                }
            },
            Tok::Atom(text, span) => Sexpr::Atom { text, span },
            Tok::Str(text, span) => Sexpr::Str { text, span },
        };
        match stack.last_mut() {
            Some((items, _)) => items.push(node),
            None => top = Some(node),
        }
    }
    if let Some((_, open)) = stack.last() {
        return Err(SexprError {
            span: *open,
            message: "unclosed `(`".into(),
        });
    }
    top.ok_or_else(|| SexprError {
        span: SrcSpan::new(1, 1),
        message: "empty document".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_lists_with_spans() {
        let doc = "(edif top\n  (edifversion 2 0 0)\n  (library work))";
        let root = parse_sexpr(doc).unwrap();
        assert_eq!(root.keyword().as_deref(), Some("edif"));
        assert_eq!(root.span(), SrcSpan::new(1, 1));
        let ver = root.child("edifversion").unwrap();
        assert_eq!(ver.span(), SrcSpan::new(2, 3));
        assert_eq!(ver.args().len(), 3);
        let lib = root.child("library").unwrap();
        assert_eq!(lib.span(), SrcSpan::new(3, 3));
        assert_eq!(lib.args()[0].as_atom(), Some("work"));
    }

    #[test]
    fn strings_keep_contents_and_position() {
        let root = parse_sexpr("(property loc (string \"12.5,40\"))").unwrap();
        let s = root.child("string").unwrap();
        assert_eq!(s.args()[0].as_str(), Some("12.5,40"));
        assert_eq!(s.args()[0].span(), SrcSpan::new(1, 23));
    }

    #[test]
    fn errors_carry_spans() {
        for (doc, needle) in [
            ("(a (b)", "unclosed"),
            ("(a))", "content after"),
            (")", "unbalanced"),
            ("(s \"no end", "unterminated"),
            ("", "empty"),
            ("(a \"line\nbreak\")", "unterminated"),
        ] {
            let err = parse_sexpr(doc).unwrap_err();
            assert!(err.message.contains(needle), "{doc:?}: {err}");
            assert!(err.span.line >= 1 && err.span.col >= 1);
        }
    }

    #[test]
    fn every_truncation_errors_cleanly() {
        let doc = "(edif t (library w (cell c (view v (interface (port p (direction input)))))))";
        for i in 0..doc.len() {
            if let Err(e) = parse_sexpr(&doc[..i]) {
                assert!(!e.to_string().is_empty());
            }
        }
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let root = parse_sexpr("(EDIF t (EdifVersion 2 0 0))").unwrap();
        assert_eq!(root.keyword().as_deref(), Some("edif"));
        assert!(root.child("edifversion").is_some());
    }
}
