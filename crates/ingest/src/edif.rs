//! EDIF 2.0.0 netlist import/export (subset).
//!
//! The front door for designs that arrive in the industry interchange
//! format instead of the in-tree text/Verilog dialects. The importer
//! resolves libraries, cells, and views, flattens hierarchy onto the
//! flat [`netlist::Netlist`] model, and keeps a line/column
//! [`SrcSpan`] on every constructed object so the collected-issues
//! linter can point findings back into the file.
//!
//! # Grammar subset
//!
//! - `(edif NAME (edifversion 2 0 0) ... libraries ... (design ...))`
//! - Libraries: `(library NAME ...)` and `(external NAME ...)`, each a
//!   sequence of `(cell ...)` forms. A cell whose view has a
//!   `(contents ...)` is hierarchical; a cell without contents is a
//!   leaf and must name a characterized cell in [`Library::standard`].
//! - Names are either identifier atoms or `(rename ID "original")`;
//!   references (`cellref`, `instanceref`, `portref`) always use the
//!   identifier.
//! - Placement rides on `(property loc (string "x,y"))`, the same
//!   convention as the Verilog `(* loc = "x,y" *)` attribute.
//! - Unknown keywords are skipped, so vendor extensions (`status`,
//!   `comment`, `technology`, ...) do not break the reader.
//!
//! # Flattening rules
//!
//! Hierarchical instances are elaborated recursively. Child objects
//! get `parent/`-prefixed names; a child net that joins one of the
//! child's ports is merged into the parent net bound to that port. A
//! child net shorting two ports of its own cell (a feed-through that
//! would merge two parent nets) is reported as unsupported, and
//! recursive instantiation is rejected.
//!
//! # Determinism
//!
//! [`write_edif`] emits each net's `joined` list driver-first with
//! sinks in the netlist's sink order, and the importer replays every
//! connection in source order (instances are created unwired, then
//! wired net by net). Relative cell order is also preserved (input
//! ports, then instances, then output ports), so a generated design
//! round-trips to bit-identical calibrated WNS/TNS.

use crate::sexpr::{parse_sexpr, Sexpr};
use netlist::lint::codes;
use netlist::{
    lint_netlist_spanned, CellRole, Function, Library, LintReport, Netlist, NetlistBuilder,
    PinIndex, Point, SourceMap, SrcSpan,
};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

// ----------------------------------------------------------------------
// Public API
// ----------------------------------------------------------------------

/// Result of the lenient (collected-issues) EDIF load path.
#[derive(Debug)]
pub struct EdifImport {
    /// The reconstructed flat netlist. `None` only when the document
    /// was too broken to elaborate at all (unreadable S-expression,
    /// no `(design ...)` form); structural defects still produce a
    /// netlist so downstream tooling can inspect it.
    pub netlist: Option<Netlist>,
    /// Source positions of the constructed cells and nets.
    pub sources: SourceMap,
    /// Every issue found, parse and structural, in one pass.
    pub report: LintReport,
}

/// A fail-fast EDIF import error: the first error-severity lint issue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdifError {
    /// Where in the source, when known.
    pub span: Option<SrcSpan>,
    /// Stable issue code from [`netlist::lint::codes`].
    pub code: &'static str,
    /// Human description.
    pub message: String,
}

impl fmt::Display for EdifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(s) => write!(f, "{s}: [{}] {}", self.code, self.message),
            None => write!(f, "[{}] {}", self.code, self.message),
        }
    }
}

impl Error for EdifError {}

/// Loads an EDIF document leniently, accumulating every defect —
/// duplicate names, unresolved cell references, undriven or
/// multiply-driven nets, dangling ports, combinational cycles,
/// non-finite attributes — into one [`LintReport`] instead of stopping
/// at the first.
pub fn lint_edif(text: &str) -> EdifImport {
    let mut report = LintReport::new();
    let root = match parse_sexpr(text) {
        Ok(root) => root,
        Err(e) => {
            report.error(codes::MALFORMED, Some(e.span), e.message);
            return EdifImport {
                netlist: None,
                sources: SourceMap::new(),
                report,
            };
        }
    };
    let flat = match flatten_document(&root, &mut report) {
        Some(flat) => flat,
        None => {
            return EdifImport {
                netlist: None,
                sources: SourceMap::new(),
                report,
            }
        }
    };
    let (netlist, sources) = elaborate(&flat, &mut report);
    report.merge(lint_netlist_spanned(&netlist, &sources));
    EdifImport {
        netlist: Some(netlist),
        sources,
        report,
    }
}

/// Strictly imports an EDIF document: runs the same collected-issues
/// pass as [`lint_edif`], then surfaces the first error-severity issue
/// as an [`EdifError`]. Warnings (e.g. dangling ports) do not fail the
/// import.
///
/// # Errors
///
/// The first error-severity [`netlist::LintIssue`], converted to an
/// [`EdifError`] with its span and stable code.
pub fn import_edif(text: &str) -> Result<(Netlist, SourceMap), EdifError> {
    let imported = lint_edif(text);
    if let Some(first) = imported.report.first_error() {
        return Err(EdifError {
            span: first.span,
            code: first.code,
            message: first.message.clone(),
        });
    }
    let netlist = imported.netlist.ok_or_else(|| EdifError {
        span: None,
        code: codes::MALFORMED,
        message: "document produced no netlist".to_owned(),
    })?;
    Ok((netlist, imported.sources))
}

// ----------------------------------------------------------------------
// Writer
// ----------------------------------------------------------------------

fn is_edif_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic())
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Maps arbitrary netlist names onto EDIF identifiers, emitting
/// `(rename rN "original")` declarations when the name itself is not a
/// legal identifier (hierarchical `a/b` names, for example).
struct Namer {
    idents: HashMap<String, String>,
    taken: HashSet<String>,
    next: usize,
}

impl Namer {
    fn new() -> Self {
        Self {
            idents: HashMap::new(),
            taken: HashSet::new(),
            next: 0,
        }
    }

    fn ident(&mut self, name: &str) -> String {
        if let Some(id) = self.idents.get(name) {
            return id.clone();
        }
        let id = if is_edif_ident(name) && !self.taken.contains(name) {
            name.to_owned()
        } else {
            loop {
                let candidate = format!("r{}", self.next);
                self.next += 1;
                if !self.taken.contains(&candidate) {
                    break candidate;
                }
            }
        };
        self.taken.insert(id.clone());
        self.idents.insert(name.to_owned(), id.clone());
        id
    }

    /// The declaration form: the identifier itself, or a rename
    /// carrying the original name.
    fn declare(&mut self, name: &str) -> String {
        let id = self.ident(name);
        if id == name {
            id
        } else {
            format!("(rename {id} \"{name}\")")
        }
    }
}

/// Serializes `netlist` as an EDIF 2.0.0 document in the dialect
/// [`import_edif`] reads. Each net's `joined` list is written
/// driver-first with sinks in sink order, so re-importing reproduces
/// the exact connection order (and therefore bit-identical timing).
pub fn write_edif(netlist: &Netlist) -> String {
    let mut out = String::new();
    let mut names = Namer::new();
    let lib = netlist.library();

    // Leaf cells actually instantiated, in library id order.
    let is_port = |role: CellRole| {
        matches!(
            role,
            CellRole::Input | CellRole::Output | CellRole::ClockSource
        )
    };
    let mut used: HashSet<usize> = HashSet::new();
    for (_, cell) in netlist.cells() {
        if !is_port(cell.role) {
            used.insert(cell.lib_cell.index());
        }
    }

    let design = names.declare(netlist.name());
    let _ = writeln!(out, "(edif {design}");
    out.push_str("  (edifversion 2 0 0)\n");
    out.push_str("  (ediflevel 0)\n");
    out.push_str("  (keywordmap (keywordlevel 0))\n");

    let _ = writeln!(out, "  (external {}", lib.name());
    out.push_str("    (ediflevel 0)\n    (technology (numberdefinition))\n");
    for (id, lc) in lib.iter() {
        if !used.contains(&id.index()) {
            continue;
        }
        let _ = writeln!(out, "    (cell {}", lc.name);
        out.push_str("      (celltype generic)\n");
        out.push_str("      (view netlist\n        (viewtype netlist)\n        (interface\n");
        for pin in lc.function.input_pin_names() {
            let _ = writeln!(out, "          (port {pin} (direction input))");
        }
        if lc.function.has_output() {
            let _ = writeln!(
                out,
                "          (port {} (direction output))",
                lc.function.output_pin_name()
            );
        }
        out.push_str("        )))\n");
    }
    out.push_str("  )\n");

    out.push_str("  (library work\n");
    out.push_str("    (ediflevel 0)\n    (technology (numberdefinition))\n");
    let _ = writeln!(out, "    (cell {design}");
    out.push_str("      (celltype generic)\n");
    out.push_str("      (view netlist\n        (viewtype netlist)\n");

    // Interface: ports in cell id order, so relative port order (and
    // with it endpoint order) survives the round trip.
    out.push_str("        (interface\n");
    for (_, cell) in netlist.cells() {
        let dir = match cell.role {
            CellRole::Input | CellRole::ClockSource => "input",
            CellRole::Output => "output",
            _ => continue,
        };
        let _ = writeln!(
            out,
            "          (port {} (direction {dir}) (property loc (string \"{},{}\")))",
            names.declare(&cell.name),
            cell.loc.x,
            cell.loc.y
        );
    }
    out.push_str("        )\n");

    out.push_str("        (contents\n");
    for (_, cell) in netlist.cells() {
        if is_port(cell.role) {
            continue;
        }
        let _ = writeln!(
            out,
            "          (instance {} (viewref netlist (cellref {} (libraryref {}))) \
             (property loc (string \"{},{}\")))",
            names.declare(&cell.name),
            lib.cell(cell.lib_cell).name,
            lib.name(),
            cell.loc.x,
            cell.loc.y
        );
    }
    // Nets in name order: net ids shift across an import (ports are
    // created before instances), so id order is not canonical, but the
    // name set is — sorting makes export → import → export a fixpoint.
    // Net *form* order is irrelevant to elaboration; only the ref order
    // inside each `joined` matters, and that is preserved exactly.
    let mut net_forms: Vec<(&str, Vec<String>)> = Vec::new();
    for (_, net) in netlist.nets() {
        let mut refs: Vec<String> = Vec::new();
        if let Some(driver) = net.driver {
            let d = netlist.cell(driver);
            match d.role {
                CellRole::Input | CellRole::ClockSource => {
                    refs.push(format!("(portref {})", names.ident(&d.name)));
                }
                _ => {
                    let pin = netlist
                        .library()
                        .cell(d.lib_cell)
                        .function
                        .output_pin_name();
                    refs.push(format!(
                        "(portref {pin} (instanceref {}))",
                        names.ident(&d.name)
                    ));
                }
            }
        }
        for &(sink, pin) in &net.sinks {
            let s = netlist.cell(sink);
            match s.role {
                CellRole::Output => refs.push(format!("(portref {})", names.ident(&s.name))),
                _ => {
                    let f = netlist.library().cell(s.lib_cell).function;
                    let pin_name = f.input_pin_names()[pin.index()];
                    refs.push(format!(
                        "(portref {pin_name} (instanceref {}))",
                        names.ident(&s.name)
                    ));
                }
            }
        }
        net_forms.push((&net.name, refs));
    }
    net_forms.sort_by_key(|(name, _)| *name);
    for (name, refs) in net_forms {
        let _ = writeln!(
            out,
            "          (net {} (joined {}))",
            names.declare(name),
            refs.join(" ")
        );
    }
    out.push_str("        )))\n");
    out.push_str("  )\n");
    let top = names.ident(netlist.name());
    let _ = writeln!(out, "  (design {top} (cellref {top} (libraryref work))))");
    out
}

// ----------------------------------------------------------------------
// Reader: document model
// ----------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PortDir {
    Input,
    Output,
}

#[derive(Debug)]
struct PortDef {
    ident: String,
    name: String,
    dir: PortDir,
    loc: Point,
    span: SrcSpan,
}

struct CellDef<'a> {
    name: String,
    ports: Vec<PortDef>,
    contents: Option<&'a Sexpr>,
}

struct Document<'a> {
    /// Library ident → (cell ident → definition), searched in source
    /// order when a `cellref` omits its `libraryref`.
    libs: Vec<(String, HashMap<String, CellDef<'a>>)>,
}

impl<'a> Document<'a> {
    fn resolve(&self, lib: Option<&str>, cell: &str) -> Option<&CellDef<'a>> {
        match lib {
            Some(lib) => self
                .libs
                .iter()
                .find(|(name, _)| name == lib)
                .and_then(|(_, cells)| cells.get(cell)),
            None => self.libs.iter().find_map(|(_, cells)| cells.get(cell)),
        }
    }
}

/// `name` or `(rename ident "name")` → (identifier, display name, span).
fn name_of(node: &Sexpr) -> Option<(String, String, SrcSpan)> {
    if let Some(atom) = node.as_atom() {
        return Some((atom.to_owned(), atom.to_owned(), node.span()));
    }
    if node.keyword().as_deref() == Some("rename") {
        let ident = node.args().first()?.as_atom()?;
        let display = node.args().get(1).and_then(Sexpr::as_str).unwrap_or(ident);
        return Some((ident.to_owned(), display.to_owned(), node.span()));
    }
    None
}

/// Reads a `(property loc (string "x,y"))` placement off `form`.
/// Unparseable coordinates report [`codes::MALFORMED`]; parseable but
/// non-finite ones report [`codes::NON_FINITE_ATTR`]; both fall back to
/// the origin so elaboration can continue.
fn loc_of(form: &Sexpr, report: &mut LintReport) -> Point {
    for prop in form.children("property") {
        if prop.args().first().and_then(Sexpr::as_atom) != Some("loc") {
            continue;
        }
        let Some(text) = prop
            .child("string")
            .and_then(|s| s.args().first())
            .and_then(Sexpr::as_str)
        else {
            report.error(
                codes::MALFORMED,
                Some(prop.span()),
                "loc property without a string value",
            );
            return Point::ORIGIN;
        };
        let parsed = text
            .split_once(',')
            .map(|(x, y)| (x.trim().parse::<f64>().ok(), y.trim().parse::<f64>().ok()));
        return match parsed {
            Some((Some(x), Some(y))) if x.is_finite() && y.is_finite() => Point::new(x, y),
            Some((Some(x), Some(y))) => {
                report.error(
                    codes::NON_FINITE_ATTR,
                    Some(prop.span()),
                    format!("non-finite placement `{text}` ({x}, {y})"),
                );
                Point::ORIGIN
            }
            _ => {
                report.error(
                    codes::MALFORMED,
                    Some(prop.span()),
                    format!("bad loc property `{text}`"),
                );
                Point::ORIGIN
            }
        };
    }
    Point::ORIGIN
}

fn parse_cell<'a>(form: &'a Sexpr, report: &mut LintReport) -> Option<(String, CellDef<'a>)> {
    let (ident, name, span) = match form.args().first().and_then(name_of) {
        Some(n) => n,
        None => {
            report.error(codes::MALFORMED, Some(form.span()), "cell without a name");
            return None;
        }
    };
    let _ = span;
    let view = form.child("view");
    let interface = view.and_then(|v| v.child("interface"));
    let mut ports = Vec::new();
    let mut port_by_ident = HashMap::new();
    if let Some(interface) = interface {
        for port in interface.children("port") {
            let Some((pid, pname, pspan)) = port.args().first().and_then(name_of) else {
                report.error(codes::MALFORMED, Some(port.span()), "port without a name");
                continue;
            };
            let dir = match port
                .child("direction")
                .and_then(|d| d.args().first())
                .and_then(Sexpr::as_atom)
                .map(str::to_ascii_lowercase)
                .as_deref()
            {
                Some("input") | None => PortDir::Input,
                Some("output") => PortDir::Output,
                Some(other) => {
                    report.error(
                        codes::MALFORMED,
                        Some(port.span()),
                        format!("unsupported port direction `{other}` on `{pname}`"),
                    );
                    PortDir::Input
                }
            };
            let loc = loc_of(port, report);
            if port_by_ident.contains_key(&pid) {
                report.error(
                    codes::DUPLICATE_CELL,
                    Some(pspan),
                    format!("duplicate port `{pname}`"),
                );
                continue;
            }
            port_by_ident.insert(pid.clone(), ports.len());
            ports.push(PortDef {
                ident: pid,
                name: pname,
                dir,
                loc,
                span: pspan,
            });
        }
    }
    Some((
        ident,
        CellDef {
            name,
            ports,
            contents: view.and_then(|v| v.child("contents")),
        },
    ))
}

// ----------------------------------------------------------------------
// Reader: flattening
// ----------------------------------------------------------------------

#[derive(Debug)]
struct FlatPort {
    name: String,
    dir: PortDir,
    loc: Point,
    span: SrcSpan,
}

#[derive(Debug)]
struct FlatInst {
    name: String,
    cell_type: String,
    loc: Point,
    span: SrcSpan,
}

#[derive(Debug, Clone)]
enum RefKind {
    /// A top-level port (index into `Flat::ports`).
    TopPort(usize),
    /// A pin on a leaf instance (index into `Flat::insts`).
    Pin { inst: usize, pin: String },
}

#[derive(Debug)]
struct FlatNet {
    name: String,
    span: SrcSpan,
    refs: Vec<(RefKind, SrcSpan)>,
}

#[derive(Default)]
struct Flat {
    name: String,
    ports: Vec<FlatPort>,
    insts: Vec<FlatInst>,
    nets: Vec<FlatNet>,
}

fn flatten_document(root: &Sexpr, report: &mut LintReport) -> Option<Flat> {
    if root.keyword().as_deref() != Some("edif") {
        report.error(
            codes::MALFORMED,
            Some(root.span()),
            "not an EDIF document (expected `(edif ...)`)",
        );
        return None;
    }
    let mut doc = Document { libs: Vec::new() };
    for lib in root
        .args()
        .iter()
        .filter(|c| matches!(c.keyword().as_deref(), Some("library") | Some("external")))
    {
        let Some((lib_ident, _, _)) = lib.args().first().and_then(name_of) else {
            report.error(codes::MALFORMED, Some(lib.span()), "library without a name");
            continue;
        };
        let mut cells = HashMap::new();
        for cell in lib.children("cell") {
            if let Some((ident, def)) = parse_cell(cell, report) {
                cells.insert(ident, def);
            }
        }
        doc.libs.push((lib_ident, cells));
    }

    let Some(design) = root.child("design") else {
        report.error(
            codes::MALFORMED,
            Some(root.span()),
            "missing `(design ...)` form",
        );
        return None;
    };
    let Some((cell_ident, lib_ident)) = cellref_of(design) else {
        report.error(
            codes::MALFORMED,
            Some(design.span()),
            "design without a `(cellref ...)`",
        );
        return None;
    };
    let Some(top) = doc.resolve(lib_ident.as_deref(), &cell_ident) else {
        report.error(
            codes::UNRESOLVED_REF,
            Some(design.span()),
            format!("design references unknown cell `{cell_ident}`"),
        );
        return None;
    };

    let mut flat = Flat {
        name: top.name.clone(),
        ..Flat::default()
    };
    let mut stack = Vec::new();
    flatten_cell(&doc, top, "", None, &mut stack, &mut flat, report);
    Some(flat)
}

/// The `(cellref CELL (libraryref LIB))` under `form`, if present.
fn cellref_of(form: &Sexpr) -> Option<(String, Option<String>)> {
    let cellref = form
        .child("cellref")
        .or_else(|| form.child("viewref").and_then(|v| v.child("cellref")))?;
    let cell = cellref.args().first()?.as_atom()?.to_owned();
    let lib = cellref
        .child("libraryref")
        .and_then(|l| l.args().first())
        .and_then(Sexpr::as_atom)
        .map(str::to_owned);
    Some((cell, lib))
}

enum Local<'a> {
    Leaf(usize),
    Hier {
        def: &'a CellDef<'a>,
        name: String,
        bindings: HashMap<String, usize>,
    },
}

/// Recursively flattens `def` into `flat`. `bindings` maps this cell's
/// port identifiers onto already-created flat nets (None at top level,
/// where ports become real [`FlatPort`]s instead).
#[allow(clippy::too_many_arguments)]
fn flatten_cell<'a>(
    doc: &'a Document<'a>,
    def: &'a CellDef<'a>,
    prefix: &str,
    bindings: Option<&HashMap<String, usize>>,
    stack: &mut Vec<String>,
    flat: &mut Flat,
    report: &mut LintReport,
) {
    if stack.iter().any(|c| c == &def.name) {
        report.error(
            codes::MALFORMED,
            None,
            format!("recursive instantiation of cell `{}`", def.name),
        );
        return;
    }
    stack.push(def.name.clone());

    // Top-level ports become real ports; child ports resolve through
    // the caller's bindings.
    let mut top_port_of: HashMap<&str, usize> = HashMap::new();
    if bindings.is_none() {
        for port in &def.ports {
            top_port_of.insert(&port.ident, flat.ports.len());
            flat.ports.push(FlatPort {
                name: port.name.clone(),
                dir: port.dir,
                loc: port.loc,
                span: port.span,
            });
        }
    }

    let contents: &[Sexpr] = def.contents.map(Sexpr::args).unwrap_or(&[]);

    // Pass 1: instances, in source order. Leaf instances materialize
    // immediately; hierarchical ones collect port bindings first and
    // recurse after the nets are known.
    let mut locals: HashMap<String, Local<'a>> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for inst in contents
        .iter()
        .filter(|c| c.keyword().as_deref() == Some("instance"))
    {
        let Some((ident, name, span)) = inst.args().first().and_then(name_of) else {
            report.error(
                codes::MALFORMED,
                Some(inst.span()),
                "instance without a name",
            );
            continue;
        };
        if locals.contains_key(&ident) {
            report.error(
                codes::DUPLICATE_CELL,
                Some(span),
                format!("duplicate instance `{prefix}{name}`"),
            );
            continue;
        }
        let Some((cell_ident, lib_ident)) = cellref_of(inst) else {
            report.error(
                codes::UNRESOLVED_REF,
                Some(span),
                format!("instance `{prefix}{name}` has no cell reference"),
            );
            continue;
        };
        let loc = loc_of(inst, report);
        let local = match doc.resolve(lib_ident.as_deref(), &cell_ident) {
            Some(child) if child.contents.is_some() => Local::Hier {
                def: child,
                name: format!("{prefix}{name}"),
                bindings: HashMap::new(),
            },
            resolved => {
                // A declared leaf keeps its (possibly renamed) display
                // name; an undeclared reference falls through to the
                // characterized-library lookup, which reports NL003.
                let cell_type = resolved
                    .map(|c| c.name.clone())
                    .unwrap_or_else(|| cell_ident.clone());
                flat.insts.push(FlatInst {
                    name: format!("{prefix}{name}"),
                    cell_type,
                    loc,
                    span,
                });
                Local::Leaf(flat.insts.len() - 1)
            }
        };
        locals.insert(ident.clone(), local);
        order.push(ident);
    }

    // Pass 2: nets, in source order. Joined refs are replayed verbatim
    // so connection order (and with it load-sum order) is preserved.
    let mut net_idents: HashSet<String> = HashSet::new();
    for net in contents
        .iter()
        .filter(|c| c.keyword().as_deref() == Some("net"))
    {
        let Some((ident, name, span)) = net.args().first().and_then(name_of) else {
            report.error(codes::MALFORMED, Some(net.span()), "net without a name");
            continue;
        };
        if !net_idents.insert(ident) {
            report.error(
                codes::DUPLICATE_NET,
                Some(span),
                format!("duplicate net `{prefix}{name}`"),
            );
            continue;
        }
        let mut refs: Vec<(RefKind, SrcSpan)> = Vec::new();
        let mut bound: Option<usize> = None;
        let mut hier_bindings: Vec<(String, String)> = Vec::new(); // (inst ident, port ident)
        let joined = net.child("joined");
        for r in joined.map(Sexpr::args).unwrap_or(&[]) {
            if r.keyword().as_deref() != Some("portref") {
                continue;
            }
            let Some(pin) = r.args().first().and_then(Sexpr::as_atom) else {
                report.error(codes::MALFORMED, Some(r.span()), "portref without a name");
                continue;
            };
            match r
                .child("instanceref")
                .and_then(|i| i.args().first())
                .and_then(Sexpr::as_atom)
            {
                None => {
                    // A port of this cell.
                    if let Some(&idx) = top_port_of.get(pin) {
                        refs.push((RefKind::TopPort(idx), r.span()));
                    } else if let Some(bindings) = bindings {
                        // An unbound child port (the parent never
                        // connected it) simply dangles.
                        if let Some(&parent) = bindings.get(pin) {
                            match bound {
                                None => bound = Some(parent),
                                Some(prev) if prev != parent => {
                                    report.error(
                                        codes::MALFORMED,
                                        Some(r.span()),
                                        format!(
                                            "net `{prefix}{name}` shorts two ports of cell \
                                             `{}` (feed-through is not supported)",
                                            def.name
                                        ),
                                    );
                                }
                                Some(_) => {}
                            }
                        }
                    } else {
                        report.error(
                            codes::UNRESOLVED_REF,
                            Some(r.span()),
                            format!("net `{prefix}{name}` references unknown port `{pin}`"),
                        );
                    }
                }
                Some(inst_ident) => {
                    match locals.get(inst_ident) {
                        Some(Local::Leaf(idx)) => refs.push((
                            RefKind::Pin {
                                inst: *idx,
                                pin: pin.to_owned(),
                            },
                            r.span(),
                        )),
                        Some(Local::Hier { .. }) => {
                            hier_bindings.push((inst_ident.to_owned(), pin.to_owned()));
                        }
                        None => {
                            report.error(
                            codes::UNRESOLVED_REF,
                            Some(r.span()),
                            format!("net `{prefix}{name}` references unknown instance `{inst_ident}`"),
                        );
                        }
                    }
                }
            }
        }
        let target = match bound {
            Some(parent) => {
                flat.nets[parent].refs.extend(refs);
                parent
            }
            None => {
                flat.nets.push(FlatNet {
                    name: format!("{prefix}{name}"),
                    span,
                    refs,
                });
                flat.nets.len() - 1
            }
        };
        for (inst_ident, port_ident) in hier_bindings {
            if let Some(Local::Hier { bindings, .. }) = locals.get_mut(&inst_ident) {
                bindings.insert(port_ident, target);
            }
        }
    }

    // Pass 3: recurse into hierarchical children, in source order.
    for ident in &order {
        if let Some(Local::Hier {
            def: child,
            name,
            bindings,
        }) = locals.get(ident)
        {
            let child_prefix = format!("{name}/");
            // Clone: the recursion needs &mut locals-free access.
            let bindings = bindings.clone();
            flatten_cell(
                doc,
                child,
                &child_prefix,
                Some(&bindings),
                stack,
                flat,
                report,
            );
        }
    }

    stack.pop();
}

// ----------------------------------------------------------------------
// Reader: elaboration onto the netlist model
// ----------------------------------------------------------------------

/// Builds the flat netlist, accumulating defects instead of failing:
/// unresolved cells are skipped, undriven nets are left unwired, and
/// every decision is recorded as a [`LintIssue`] so the strict path can
/// surface the first error.
fn elaborate(flat: &Flat, report: &mut LintReport) -> (Netlist, SourceMap) {
    let library = Library::standard();

    // Per-instance function, where the cell type resolves.
    let funcs: Vec<Option<Function>> = flat
        .insts
        .iter()
        .map(|i| {
            library
                .find(&i.cell_type)
                .map(|id| library.cell(id).function)
        })
        .collect();

    // Clock classification: nets on DFF CK pins, closed backward
    // through clock buffers (same rule as the Verilog reader).
    let mut is_clock = vec![false; flat.nets.len()];
    let mut clkbuf_pins: Vec<(usize, Option<usize>, Option<usize>)> = Vec::new(); // (inst, a_net, y_net)
    for (idx, func) in funcs.iter().enumerate() {
        if *func == Some(Function::ClkBuf) {
            clkbuf_pins.push((idx, None, None));
        }
    }
    let mut port_net: Vec<Option<usize>> = vec![None; flat.ports.len()];
    for (ni, net) in flat.nets.iter().enumerate() {
        for (kind, _) in &net.refs {
            match kind {
                RefKind::Pin { inst, pin } => {
                    if funcs[*inst] == Some(Function::Dff) && pin == "CK" {
                        is_clock[ni] = true;
                    }
                    if let Some(entry) = clkbuf_pins.iter_mut().find(|(i, _, _)| i == inst) {
                        if pin == "A" {
                            entry.1 = Some(ni);
                        } else if pin == "Y" {
                            entry.2 = Some(ni);
                        }
                    }
                }
                RefKind::TopPort(p) => port_net[*p] = Some(ni),
            }
        }
    }
    loop {
        let mut grew = false;
        for &(_, a, y) in &clkbuf_pins {
            if let (Some(a), Some(y)) = (a, y) {
                if is_clock[y] && !is_clock[a] {
                    is_clock[a] = true;
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }

    let mut b = NetlistBuilder::new(flat.name.clone(), library.clone());
    let mut sources = SourceMap::new();
    let mut taken_names: HashSet<String> = HashSet::new();

    // Input and clock ports, in interface order.
    let mut port_ids: Vec<Option<netlist::NetId>> = vec![None; flat.ports.len()];
    for (idx, port) in flat.ports.iter().enumerate() {
        if port.dir != PortDir::Input {
            continue;
        }
        if !taken_names.insert(port.name.clone()) {
            report.error(
                codes::DUPLICATE_CELL,
                Some(port.span),
                format!("duplicate cell `{}`", port.name),
            );
            continue;
        }
        let clock = port_net[idx].map(|n| is_clock[n]).unwrap_or(false);
        let net = if clock {
            b.add_clock_port(&port.name, port.loc)
        } else {
            b.add_input(&port.name, port.loc)
        };
        port_ids[idx] = Some(net);
        sources.cells.insert(port.name.clone(), port.span);
    }

    // Leaf instances, unwired, in source order.
    let mut cell_ids: Vec<Option<netlist::CellId>> = vec![None; flat.insts.len()];
    for (idx, inst) in flat.insts.iter().enumerate() {
        let made = match funcs[idx] {
            None => {
                report.error(
                    codes::UNRESOLVED_REF,
                    Some(inst.span),
                    format!(
                        "instance `{}` references unknown library cell `{}`",
                        inst.name, inst.cell_type
                    ),
                );
                continue;
            }
            Some(Function::Dff) => b.add_flip_flop_unwired(&inst.name, &inst.cell_type, inst.loc),
            Some(f) if f.is_combinational() => {
                b.add_gate_unwired(&inst.name, &inst.cell_type, inst.loc)
            }
            Some(other) => {
                report.error(
                    codes::UNRESOLVED_REF,
                    Some(inst.span),
                    format!(
                        "instance `{}`: cell type `{}` ({other}) cannot be instantiated",
                        inst.name, inst.cell_type
                    ),
                );
                continue;
            }
        };
        match made {
            Ok(id) => {
                cell_ids[idx] = Some(id);
                sources.cells.insert(inst.name.clone(), inst.span);
            }
            Err(netlist::BuildError::DuplicateName(name)) => {
                report.error(
                    codes::DUPLICATE_CELL,
                    Some(inst.span),
                    format!("duplicate cell `{name}`"),
                );
            }
            Err(e) => {
                report.error(codes::UNRESOLVED_REF, Some(inst.span), e.to_string());
            }
        }
    }

    // Nets: resolve each flat net's driver, then replay the sinks in
    // joined order. Output-port feeds are collected and created last,
    // preserving the model's port-after-logic creation order.
    let mut out_feed: Vec<Option<netlist::NetId>> = vec![None; flat.ports.len()];
    let mut wired: HashSet<(netlist::CellId, u8)> = HashSet::new();
    let mut net_spans: Vec<(netlist::NetId, SrcSpan)> = Vec::new();
    for net in &flat.nets {
        // A ref drives the net if it is an input port or an output pin.
        let is_driver = |kind: &RefKind| match kind {
            RefKind::TopPort(p) => flat.ports[*p].dir == PortDir::Input,
            RefKind::Pin { inst, pin } => {
                funcs[*inst].map(|f| f.output_pin_name() == pin) == Some(true)
            }
        };
        let drivers: Vec<usize> = net
            .refs
            .iter()
            .enumerate()
            .filter(|(_, (kind, _))| is_driver(kind))
            .map(|(i, _)| i)
            .collect();
        if drivers.len() > 1 {
            report.error(
                codes::MULTIPLY_DRIVEN_NET,
                Some(net.span),
                format!("net `{}` is driven by {} outputs", net.name, drivers.len()),
            );
        }
        let net_id = drivers.first().and_then(|&i| match &net.refs[i].0 {
            RefKind::TopPort(p) => port_ids[*p],
            RefKind::Pin { inst, .. } => cell_ids[*inst].map(|c| b.cell_output(c)),
        });
        let Some(net_id) = net_id else {
            let sinks = net.refs.iter().filter(|(k, _)| !is_driver(k)).count();
            if sinks > 0 {
                report.error(
                    codes::UNDRIVEN_NET,
                    Some(net.span),
                    format!("net `{}` has {sinks} sink(s) but no driver", net.name),
                );
            }
            continue;
        };
        net_spans.push((net_id, net.span));
        for (pos, (kind, span)) in net.refs.iter().enumerate() {
            if Some(&pos) == drivers.first() {
                continue;
            }
            match kind {
                RefKind::TopPort(p) => {
                    if flat.ports[*p].dir != PortDir::Output {
                        continue; // extra driver, already reported
                    }
                    if out_feed[*p].is_some() {
                        report.error(
                            codes::MULTIPLY_DRIVEN_NET,
                            Some(*span),
                            format!(
                                "output port `{}` is fed by more than one net",
                                flat.ports[*p].name
                            ),
                        );
                        continue;
                    }
                    out_feed[*p] = Some(net_id);
                }
                RefKind::Pin { inst, pin } => {
                    let (Some(cell), Some(func)) = (cell_ids[*inst], funcs[*inst]) else {
                        continue; // instance was skipped and reported
                    };
                    if func.output_pin_name() == pin {
                        continue; // extra driver, already reported
                    }
                    let Some(pin_idx) = func.input_pin_names().iter().position(|p| p == pin) else {
                        report.error(
                            codes::UNRESOLVED_REF,
                            Some(*span),
                            format!(
                                "cell type `{}` has no pin `{pin}`",
                                flat.insts[*inst].cell_type
                            ),
                        );
                        continue;
                    };
                    if !wired.insert((cell, pin_idx as u8)) {
                        report.error(
                            codes::MULTIPLY_DRIVEN_NET,
                            Some(*span),
                            format!(
                                "instance `{}` pin `{pin}` is connected to more than one net",
                                flat.insts[*inst].name
                            ),
                        );
                        continue;
                    }
                    b.connect_input_pin(cell, PinIndex(pin_idx as u8), net_id);
                }
            }
        }
    }

    // Output ports last, in interface order.
    for (idx, port) in flat.ports.iter().enumerate() {
        if port.dir != PortDir::Output {
            continue;
        }
        let Some(feed) = out_feed[idx] else {
            report.warning(
                codes::DANGLING_PORT,
                Some(port.span),
                format!("output port `{}` is not driven", port.name),
            );
            continue;
        };
        match b.add_output(&port.name, port.loc, feed) {
            Ok(_) => {
                sources.cells.insert(port.name.clone(), port.span);
            }
            Err(e) => {
                report.error(codes::DUPLICATE_CELL, Some(port.span), e.to_string());
            }
        }
    }

    let netlist = b.build_unchecked();
    for (id, span) in net_spans {
        sources.nets.insert(netlist.net(id).name.clone(), span);
    }
    (netlist, sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GeneratorConfig;

    #[test]
    fn round_trips_generated_design_structurally() {
        let original = GeneratorConfig::small(601).generate();
        let text = write_edif(&original);
        let (imported, sources) = import_edif(&text).expect("round trip");
        assert_eq!(imported.num_cells(), original.num_cells());
        assert_eq!(imported.num_nets(), original.num_nets());
        assert_eq!(imported.total_area(), original.total_area());
        for (id, cell) in original.cells() {
            let p = imported.find_cell(&cell.name).expect("cell survives");
            assert_eq!(imported.cell(p).loc, original.cell(id).loc, "{}", cell.name);
            assert_eq!(
                imported.cell(p).role,
                original.cell(id).role,
                "{}",
                cell.name
            );
        }
        // Every imported cell has a source location.
        for (_, cell) in imported.cells() {
            assert!(sources.cells.contains_key(&cell.name), "{}", cell.name);
        }
        imported.validate().expect("valid");
    }

    #[test]
    fn round_trip_preserves_sink_order() {
        let original = GeneratorConfig::small(77).generate();
        let text = write_edif(&original);
        let (imported, _) = import_edif(&text).unwrap();
        for (_, net) in original.nets() {
            let other = imported.find_net(&net.name).expect("net survives by name");
            let a: Vec<(String, u8)> = net
                .sinks
                .iter()
                .map(|&(c, p)| (original.cell(c).name.clone(), p.0))
                .collect();
            let b: Vec<(String, u8)> = imported
                .net(other)
                .sinks
                .iter()
                .map(|&(c, p)| (imported.cell(c).name.clone(), p.0))
                .collect();
            assert_eq!(a, b, "net {}", net.name);
        }
    }

    const HIER: &str = r#"(edif top
  (edifversion 2 0 0)
  (external std45
    (cell INV_X1 (celltype generic)
      (view netlist (viewtype netlist)
        (interface (port A (direction input)) (port Y (direction output)))))
    (cell DFF_X1 (celltype generic)
      (view netlist (viewtype netlist)
        (interface (port D (direction input)) (port CK (direction input))
                   (port Q (direction output))))))
  (library work
    (cell pair (celltype generic)
      (view netlist (viewtype netlist)
        (interface (port i (direction input)) (port o (direction output)))
        (contents
          (instance g0 (viewref netlist (cellref INV_X1 (libraryref std45))))
          (instance g1 (viewref netlist (cellref INV_X1 (libraryref std45))))
          (net ni (joined (portref i) (portref A (instanceref g0))))
          (net nm (joined (portref Y (instanceref g0)) (portref A (instanceref g1))))
          (net no (joined (portref Y (instanceref g1)) (portref o))))))
    (cell top (celltype generic)
      (view netlist (viewtype netlist)
        (interface (port clk (direction input)) (port d (direction input))
                   (port y (direction output)))
        (contents
          (instance ff (viewref netlist (cellref DFF_X1 (libraryref std45))))
          (instance p0 (viewref netlist (cellref pair (libraryref work))))
          (net nd (joined (portref d) (portref D (instanceref ff))))
          (net nc (joined (portref clk) (portref CK (instanceref ff))))
          (net nq (joined (portref Q (instanceref ff)) (portref i (instanceref p0))))
          (net ny (joined (portref o (instanceref p0)) (portref y)))))))
  (design top (cellref top (libraryref work))))"#;

    #[test]
    fn flattens_hierarchy_with_prefixed_names() {
        let (n, _) = import_edif(HIER).expect("hierarchical import");
        assert!(n.find_cell("ff").is_some());
        assert!(n.find_cell("p0/g0").is_some());
        assert!(n.find_cell("p0/g1").is_some());
        assert_eq!(
            n.cell(n.find_cell("clk").unwrap()).role,
            CellRole::ClockSource
        );
        assert_eq!(n.cell(n.find_cell("d").unwrap()).role, CellRole::Input);
        // ff.Q feeds p0/g0.A through the child's bound port net.
        let ff = n.find_cell("ff").unwrap();
        let q = n.cell(ff).output.unwrap();
        assert!(n
            .net(q)
            .sinks
            .iter()
            .any(|&(c, _)| n.cell(c).name == "p0/g0"));
        n.validate().expect("flat design is valid");
    }

    #[test]
    fn rename_forms_carry_original_names() {
        let text = HIER
            .replace("(instance ff ", "(instance (rename r9 \"my ff!\") ")
            .replace("(instanceref ff)", "(instanceref r9)");
        let (n, sources) = import_edif(&text).expect("renamed import");
        assert!(n.find_cell("my ff!").is_some());
        assert!(sources.cells.contains_key("my ff!"));
    }

    #[test]
    fn lint_collects_multiple_defect_classes_with_spans() {
        let text = r#"(edif bad
  (edifversion 2 0 0)
  (external std45
    (cell INV_X1 (celltype generic)
      (view netlist (viewtype netlist)
        (interface (port A (direction input)) (port Y (direction output))))))
  (library work
    (cell bad (celltype generic)
      (view netlist (viewtype netlist)
        (interface (port a (direction input)) (port y (direction output)))
        (contents
          (instance u0 (viewref netlist (cellref INV_X1 (libraryref std45)))
            (property loc (string "NaN,4")))
          (instance u0 (viewref netlist (cellref INV_X1 (libraryref std45))))
          (instance ghost (viewref netlist (cellref MYSTERY_X9 (libraryref std45))))
          (instance c0 (viewref netlist (cellref INV_X1 (libraryref std45))))
          (instance c1 (viewref netlist (cellref INV_X1 (libraryref std45))))
          (net undriven (joined (portref A (instanceref u0))))
          (net loop0 (joined (portref Y (instanceref c0)) (portref A (instanceref c1))))
          (net loop1 (joined (portref Y (instanceref c1)) (portref A (instanceref c0))))
          (net ny (joined (portref a) (portref y)))))))
  (design bad (cellref bad (libraryref work))))"#;
        let imported = lint_edif(text);
        let report = &imported.report;
        let has = |code: &str| report.issues.iter().any(|i| i.code == code);
        assert!(has(codes::NON_FINITE_ATTR), "{}", report.render_text());
        assert!(has(codes::DUPLICATE_CELL), "{}", report.render_text());
        assert!(has(codes::UNRESOLVED_REF), "{}", report.render_text());
        assert!(has(codes::UNDRIVEN_NET), "{}", report.render_text());
        assert!(has(codes::COMBINATIONAL_CYCLE), "{}", report.render_text());
        // Parse-side findings carry spans pointing into the document.
        for issue in report
            .issues
            .iter()
            .filter(|i| i.code == codes::DUPLICATE_CELL)
        {
            let span = issue.span.expect("span");
            assert!(span.line > 1 && span.col > 1, "{issue}");
        }
        // The netlist still elaborates for inspection.
        assert!(imported.netlist.is_some());
        // Strict import surfaces the first error.
        let err = import_edif(text).unwrap_err();
        assert!(!err.to_string().is_empty());
        assert!(err.span.is_some());
    }

    #[test]
    fn unknown_keywords_are_skipped() {
        let text = HIER.replace(
            "(edifversion 2 0 0)",
            "(edifversion 2 0 0) (status (written (timestamp 2026 8 8))) (comment \"x\")",
        );
        import_edif(&text).expect("vendor extensions ignored");
    }

    #[test]
    fn rejects_non_edif_documents() {
        for doc in [
            "(verilog m)",
            "(edif t)",
            "(edif t (design x (cellref nope)))",
        ] {
            let imported = lint_edif(doc);
            assert!(imported.report.num_errors() >= 1, "{doc}");
            assert!(imported.netlist.is_none(), "{doc}");
            assert!(import_edif(doc).is_err(), "{doc}");
        }
    }

    #[test]
    fn recursive_instantiation_is_rejected() {
        let text = r#"(edif t
  (library work
    (cell a (view netlist (viewtype netlist)
      (interface (port p (direction input)))
      (contents (instance inner (viewref netlist (cellref a (libraryref work))))))))
  (design t (cellref a (libraryref work))))"#;
        let imported = lint_edif(text);
        assert!(
            imported
                .report
                .issues
                .iter()
                .any(|i| i.message.contains("recursive")),
            "{}",
            imported.report.render_text()
        );
    }

    #[test]
    fn writer_renames_non_identifier_names() {
        let (n, _) = import_edif(HIER).unwrap();
        let text = write_edif(&n);
        assert!(text.contains("(rename "), "hierarchical names need renames");
        let (again, _) = import_edif(&text).expect("re-export round trips");
        assert!(again.find_cell("p0/g0").is_some());
    }
}
